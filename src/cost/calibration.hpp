#pragma once

// Bridge between the obs-layer online calibrator and the Section 5 cost
// model: seeds a calibrator's priors from the parameters the planner
// would otherwise use, reduces one instrumented run to a
// QueryObservation, and applies a CalibrationState back onto CostParams.
// The obs layer stays free of cost/executor types; everything
// model-shaped lives here.

#include <string>

#include "cost/cost_model.hpp"
#include "obs/calibrate.hpp"

namespace orv {

struct QesResult;

namespace obs {
class ObsContext;
struct CriticalPath;
}  // namespace obs

/// Calibrator priors, taken from the cost parameters the planner assembled
/// from the (possibly mis-stated) cluster spec.
obs::CalibrationState calibration_priors(const CostParams& p);

/// Overrides the hardware fields of `p` with calibrated effective values.
/// Only parameters the state actually holds (> 0; msg_overhead once any
/// query has been observed) are replaced, so an empty state is a no-op and
/// the paper paths stay byte-identical.
CostParams apply_calibration(CostParams p, const obs::CalibrationState& s);

/// Reduces one instrumented run — executor accounting, the run context's
/// stage aggregates, and the trace critical path — to the plain-number
/// observation the calibrator consumes. `prior` supplies the binding
/// analysis (is the transfer phase network- or disk-bound under the
/// current beliefs?) and the CPU split for Grace Hash's fused
/// build+probe spans.
obs::QueryObservation make_observation(const CostParams& prior,
                                       bool indexed_join,
                                       const QesResult& result,
                                       const obs::ObsContext& ctx,
                                       const obs::CriticalPath& cp,
                                       std::string label = {});

}  // namespace orv
