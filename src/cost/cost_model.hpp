#pragma once

// Cost models for the Indexed Join and Grace Hash algorithms (paper
// Section 5, parameters in Table 1).
//
//   Total_IJ = Transfer + BuildHT + Lookup
//   Transfer = T (RS_R + RS_S) / min(Net_bw(n_s, n_j), readIO_bw * n_s)
//   BuildHT  = alpha_build  * T / n_j
//   Lookup   = alpha_lookup * n_e * c_S / n_j
//
//   Total_GH = Transfer + Write + Read + Cpu
//   Write    = T (RS_R + RS_S) / (writeIO_bw * n_j)
//   Read     = T (RS_R + RS_S) / (readIO_bw  * n_j)
//   Cpu      = (alpha_build + alpha_lookup) * T / n_j
//
// In shared-filesystem mode (Fig. 9) a single NFS server replaces the n_s
// local disks and the n_j scratch disks, so the aggregate I/O bandwidth
// terms lose their node multipliers.
//
// Pipelined variants (QesOptions::pipelined()): when the executor overlaps
// fetch with compute, serial sums become max-of-stages plus a pipeline-fill
// term — the first work unit cannot overlap with anything, so the shorter
// stage is paid once for it:
//
//   Total_IJ_pipe = max(Transfer, Cpu) + min(Transfer, Cpu) / units
//     with units = pairs per joiner = max(1, n_e / n_j)
//   Total_GH_pipe = max(Transfer, Write) + min(...)/batches   (phase 1)
//                 + max(Read, Cpu)       + min(...)/buckets   (phase 2)
//
// The overlap is carried in CostBreakdown::overlap so the per-stage terms
// stay comparable with the serial models.

#include <cstdint>
#include <string>

#include "cluster/cluster.hpp"
#include "datagen/dataset_spec.hpp"

namespace orv {

/// Table 1: dataset and system parameters.
struct CostParams {
  // Dataset parameters.
  double T = 0;     // tuples per table
  double c_R = 0;   // tuples per left sub-table
  double c_S = 0;   // tuples per right sub-table
  double n_e = 0;   // edges in the connectivity graph
  double RS_R = 0;  // left record size, bytes
  double RS_S = 0;  // right record size, bytes

  // System parameters.
  double net_bw = 0;        // aggregate Net_bw(n_s, n_j), bytes/s
  double read_io_bw = 0;    // per-disk, bytes/s
  double write_io_bw = 0;   // per-disk, bytes/s
  double n_s = 0;           // storage nodes
  double n_j = 0;           // joiner nodes
  double alpha_build = 0;   // s per tuple
  double alpha_lookup = 0;  // s per tuple

  bool shared_filesystem = false;

  // Locality extension (colocated clusters, src/place). local_fraction is
  // the fraction of IJ transfer bytes that move over a node-local bus
  // instead of NIC + switch; local_bw is one bus's bandwidth. The planner
  // derives local_fraction from the predicted placement-affinity schedule
  // (schedule_local_fraction). GH always shuffles through the switch, so
  // only the IJ transfer term reads these; at local_fraction = 0 or
  // local_bw = 0 the model reduces exactly to the paper's formula.
  double local_fraction = 0;
  double local_bw = 0;

  // Pipelined-model parameters (only read by the *_pipelined models; the
  // serial models ignore them). Defaults mirror QesOptions.
  double memory_bytes = 0;       // per-joiner memory, sizes GH buckets
  double batch_bytes = 64 * 1024;       // GH record batch per message
  double bucket_pair_bytes = 0;  // 0 derives from memory_bytes / 2
  double prefetch_lookahead = 0;  // IJ channel depth (0 = serial)

  // Per-message fixed overhead (seconds per message, the Grappa-style
  // gamma term the calibrator can estimate): senders pay it in parallel,
  // so it adds msg_overhead * n_messages / n_s to the transfer term. At
  // the default 0 every model reproduces the paper's formulas exactly.
  double msg_overhead = 0;

  // Logical messages combined per physical network frame — the message
  // aggregator's flush threshold (QesOptions::agg_flush_batches). The
  // per-message overhead is paid per *frame*, so the msg term divides by
  // this. 1 (default) prices the unaggregated network.
  double agg_flush_batches = 1;

  double m_S() const { return T / c_S; }  // number of right sub-tables
  double edge_ratio() const { return n_e * c_R * c_S / (T * T); }

  /// Assembles parameters from a cluster spec and dataset stats.
  /// `cpu_factor` scales CPU speed (Fig. 8: factor < 1 models a slower CPU
  /// by repeating hash operations 1/factor times).
  static CostParams from(const ClusterSpec& cluster,
                         const ConnectivityStats& data,
                         std::size_t record_size_left,
                         std::size_t record_size_right,
                         double cpu_factor = 1.0);

  std::string to_string() const;
};

struct CostBreakdown {
  double transfer = 0;
  double write = 0;   // GH only
  double read = 0;    // GH only
  double cpu_build = 0;
  double cpu_lookup = 0;
  /// Time hidden by fetch/compute overlap; the serial models leave it 0.
  double overlap = 0;

  double cpu() const { return cpu_build + cpu_lookup; }
  double total() const {
    return transfer + write + read + cpu_build + cpu_lookup - overlap;
  }
  std::string to_string() const;
};

/// Logical h1 batch messages the GH partition phase ships: one per
/// batch_bytes of shuffled records — the same derivation run_grace_hash's
/// Partitioner uses for its flush threshold (the executor sends slightly
/// more because each sender's final per-destination flush may be partial).
double gh_h1_messages(const CostParams& p);

/// Physical frames those messages cross the switch in: the message count
/// divided by agg_flush_batches. Equal to gh_h1_messages at the default
/// threshold of 1 (no aggregation).
double gh_h1_frames(const CostParams& p);

/// Logical IJ fetch replies: one per sub-table fetch, m_R + m_S minimum.
double ij_fetch_messages(const CostParams& p);

CostBreakdown ij_cost(const CostParams& p);
CostBreakdown gh_cost(const CostParams& p);

/// Pipelined Indexed Join (prefetch_lookahead > 0): the prefetcher hides
/// transfer behind build/probe, so per-node time approaches
/// max(Transfer, Cpu) plus a fill term of min(Transfer, Cpu) spread over
/// the per-joiner pair count. The bounded channel limits how well bursty
/// per-pair transfer demand (0–2 fetches per pair, depending on cache
/// hits) smooths against compute, so the hidden time is further scaled by
/// the finite-window factor L / (L + 1). Stage terms match ij_cost; the
/// saving lands in `overlap` (0 when lookahead is 0, i.e. serial).
CostBreakdown ij_cost_pipelined(const CostParams& p);

/// Pipelined Grace Hash (gh_double_buffer): phase 1 double-buffers bucket
/// spills against the network ingress (max(Transfer, Write)), phase 2
/// overlaps the next bucket's scratch read with the current bucket's
/// build/probe (max(Read, Cpu)). Fill terms use the per-joiner batch and
/// bucket counts derived exactly as run_grace_hash derives them.
CostBreakdown gh_cost_pipelined(const CostParams& p);

/// True when the model prefers the Indexed Join.
bool ij_preferred(const CostParams& p);

/// The n_e * c_S value at which the two totals cross (holding everything
/// else fixed). IJ wins below, GH above. Derivation (Section 6.2, with
/// readIO = writeIO = IO):
///   alpha_lookup * n_e * c_S / n_j  =  2 T (RS_R+RS_S) / (IO n_j)
///                                      + (alpha_lookup) * T / n_j
/// plus the build terms, which cancel.
double crossover_ne_cs(const CostParams& p);

/// Section 6.2's threshold on IO_bw / F: IJ preferred while
/// IO_bw/F < 2 (RS_R+RS_S) / (gamma_lookup (n_e/m_S - 1)).
double io_per_flop_threshold(const CostParams& p, double gamma_lookup);

/// The paper's cache-miss extension ("it would not be difficult to extend
/// it for cache misses, as that will only involve re-retrieving some
/// sub-tables"): IJ's transfer term scales by the re-fetch factor — total
/// sub-table fetches the schedule incurs under the cache, divided by the
/// minimum (each needed sub-table copy fetched once). The factor comes
/// from Schedule::fetches_with_lru or from a QES run's measured fetches.
CostBreakdown ij_cost_with_refetch(const CostParams& p,
                                   double refetch_factor);

/// Observed resource contention, expressed as busy fractions in [0, 1):
/// what share of recent virtual time the shared disks, network path and
/// compute CPUs spent serving *other* work. The concurrent-workload
/// driver samples these from the live cluster (busy-time deltas between
/// plan points); Table 1's parameters describe an idle cluster, so under
/// load the planner derates them by the residual capacity.
struct ContentionFactors {
  double disk_busy = 0;  // storage-disk busy fraction
  double net_busy = 0;   // max of NIC / switch busy fractions
  double cpu_busy = 0;   // compute-CPU busy fraction

  bool any() const { return disk_busy > 0 || net_busy > 0 || cpu_busy > 0; }
  std::string to_string() const;
};

/// Derates the system parameters by the observed contention: bandwidth
/// terms scale by the residual fraction (1 - busy), CPU alphas stretch by
/// 1 / (1 - busy). Busy fractions are clamped to 0.95 so a saturated
/// resource degrades the plan rather than producing infinities. With
/// all-zero factors the parameters are returned bit-identical, so every
/// single-query plan (and all committed baselines) is unaffected.
CostParams apply_contention(CostParams p, const ContentionFactors& f);

}  // namespace orv
