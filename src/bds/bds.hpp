#pragma once

// Basic Data Source Service (paper Section 4).
//
// A BDS instance executes on a storage node and serves sub-tables for the
// node's local chunks: it reads the chunk bytes from the local disk
// (charged to the simulated spindle), runs the extractor that matches the
// chunk's layout (charged to the storage node's CPU), and — when the
// requester is a compute node — ships the sub-table across the network.

#include <memory>
#include <vector>

#include "chunkio/chunk_store.hpp"
#include "cluster/cluster.hpp"
#include "extract/extractor.hpp"
#include "meta/metadata.hpp"
#include "obs/span.hpp"
#include "sim/task.hpp"

namespace orv {

/// Per-node BDS statistics.
struct BdsStats {
  std::uint64_t subtables_served = 0;
  std::uint64_t chunk_bytes_read = 0;
  std::uint64_t subtable_bytes_shipped = 0;
};

class BdsInstance {
 public:
  /// `extract_ops_per_byte` models extractor CPU cost; the paper assumes it
  /// is much less than the chunk's I/O cost, which holds for the default.
  BdsInstance(Cluster& cluster, std::size_t storage_node,
              const MetaDataService& meta,
              std::shared_ptr<const ChunkStore> store,
              double extract_ops_per_byte = 1.0);

  std::size_t node() const { return node_; }
  const BdsStats& stats() const { return stats_; }

  /// Produces the basic sub-table (i, j) locally: disk read + extraction.
  /// The chunk must live on this node. `rpc` is the caller's trace
  /// context; the storage-side span parents on it so cross-node requests
  /// assemble into one DAG.
  sim::Task<std::shared_ptr<const SubTable>> produce(
      SubTableId id, obs::TraceContext rpc = {});

  /// produce() followed by a network transfer of the sub-table's bytes to
  /// the given compute node. If `ranges` is non-null and non-empty, the
  /// record-level selection is pushed down: rows are filtered *at the
  /// storage node* and only survivors cross the network (an extension the
  /// extractor layer enables; the paper filters at the compute side).
  sim::Task<std::shared_ptr<const SubTable>> fetch_to_compute(
      SubTableId id, std::size_t compute_node,
      const std::vector<AttrRange>* ranges = nullptr,
      obs::TraceContext rpc = {});

  /// Batched fetch_to_compute over several of this node's chunks, for the
  /// pipelined prefetcher: chunk reads that are adjacent on disk (same
  /// file, contiguous offsets — datagen appends a table's chunks in order,
  /// so this is common) coalesce into one multi-chunk disk reservation,
  /// paying one seek per run instead of one per chunk. Extraction and the
  /// network ship are likewise reserved once for the batch total. Results
  /// come back in the order of `ids`. Not fault-aware: callers fall back
  /// to per-id fetches when an injector is installed.
  sim::Task<std::vector<std::shared_ptr<const SubTable>>>
  fetch_batch_to_compute(std::vector<SubTableId> ids, std::size_t compute_node,
                         const std::vector<AttrRange>* ranges = nullptr,
                         obs::TraceContext rpc = {});

 private:
  Cluster& cluster_;
  std::size_t node_;
  const MetaDataService& meta_;
  std::shared_ptr<const ChunkStore> store_;
  double extract_ops_per_byte_;
  BdsStats stats_;
};

/// All BDS instances of a dataset's storage nodes.
class BdsService {
 public:
  BdsService(Cluster& cluster, const MetaDataService& meta,
             std::vector<std::shared_ptr<ChunkStore>> stores,
             double extract_ops_per_byte = 1.0);

  BdsInstance& instance(std::size_t storage_node);

  /// The instance hosting sub-table `id`'s chunk.
  BdsInstance& instance_for(SubTableId id);

  std::size_t num_instances() const { return instances_.size(); }

  BdsStats total_stats() const;

 private:
  const MetaDataService& meta_;
  std::vector<std::unique_ptr<BdsInstance>> instances_;
};

}  // namespace orv
