#include "bds/bds.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fault/fault.hpp"
#include "net/aggregator.hpp"
#include "obs/obs.hpp"
#include "sim/event.hpp"

namespace orv {

namespace {

/// Mirrors BdsStats deltas into the installed obs registry, if any.
void publish_bds(std::uint64_t chunk_bytes, std::uint64_t shipped_bytes) {
  auto* ctx = obs::context();
  if (!ctx) return;
  ctx->registry.counter("bds.subtables_served").add(1);
  ctx->registry.counter("bds.chunk_bytes_read").add(chunk_bytes);
  if (shipped_bytes) {
    ctx->registry.counter("bds.subtable_bytes_shipped").add(shipped_bytes);
  }
}

}  // namespace

BdsInstance::BdsInstance(Cluster& cluster, std::size_t storage_node,
                         const MetaDataService& meta,
                         std::shared_ptr<const ChunkStore> store,
                         double extract_ops_per_byte)
    : cluster_(cluster),
      node_(storage_node),
      meta_(meta),
      store_(std::move(store)),
      extract_ops_per_byte_(extract_ops_per_byte) {
  ORV_REQUIRE(store_ != nullptr, "BDS instance needs a chunk store");
}

sim::Task<std::shared_ptr<const SubTable>> BdsInstance::produce(
    SubTableId id, obs::TraceContext rpc) {
  const ChunkMeta& cm = meta_.chunk(id);
  ORV_REQUIRE(cm.location.storage_node == node_,
              "BDS instance asked for a chunk on another node: " +
                  cm.location.to_string());
  obs::StageScope stage(obs::context(), "bds.produce", rpc.parent);
  stage.tag("storage_node", static_cast<std::uint64_t>(node_));

  if (auto* inj = fault::context()) {
    if (inj->storage_down(node_)) {
      inj->note_crash_observed(fault::NodeKind::Storage, node_);
      const double up_at = inj->storage_recovery_time(node_);
      if (up_at == fault::kNever) {
        throw fault::FaultError("storage node " + std::to_string(node_) +
                                " permanently lost; chunk " + id.to_string() +
                                " is unreadable");
      }
      // Local produce has no remote caller to time out: the request just
      // stalls on the dead node until it serves again.
      co_await cluster_.engine().wait_until(up_at);
    }
    inj->maybe_fail_chunk_read(node_);
  }

  // Charge the chunk read to the local disk, then do the real read.
  co_await cluster_.storage_disk(node_).read(
      static_cast<double>(cm.location.size));
  const auto chunk_bytes = store_->read(cm.location);

  // Extraction: interpret the application-specific layout (real work),
  // charged to this node's CPU.
  co_await cluster_.storage_cpu(node_).use(
      extract_ops_per_byte_ * static_cast<double>(chunk_bytes.size()));
  auto st = std::make_shared<const SubTable>(extract_chunk(chunk_bytes));
  ORV_CHECK(st->id() == id, "extracted sub-table id mismatch");

  ++stats_.subtables_served;
  stats_.chunk_bytes_read += cm.location.size;
  publish_bds(cm.location.size, 0);
  co_return st;
}

namespace {

/// Record-level range filter shared with the QES layer (defined there).
SubTable filter_subtable(const SubTable& st,
                         const std::vector<AttrRange>& ranges) {
  Rect pred = Rect::unbounded(st.schema().num_attrs());
  bool constrained = false;
  for (const auto& r : ranges) {
    if (auto idx = st.schema().index_of(r.attr)) {
      pred[*idx] = pred[*idx].intersect(r.range);
      constrained = true;
    }
  }
  if (!constrained) {
    SubTable copy(st.schema_ptr(), st.id());
    auto bytes = st.bytes();
    copy.adopt_bytes({bytes.begin(), bytes.end()});
    copy.set_bounds(st.bounds());
    return copy;
  }
  SubTable out(st.schema_ptr(), st.id());
  for (std::size_t r = 0; r < st.num_rows(); ++r) {
    if (st.row_in(r, pred)) out.append_row({st.row(r), st.record_size()});
  }
  out.compute_bounds();
  return out;
}

}  // namespace

sim::Task<std::shared_ptr<const SubTable>> BdsInstance::fetch_to_compute(
    SubTableId id, std::size_t compute_node,
    const std::vector<AttrRange>* ranges, obs::TraceContext rpc) {
  const ChunkMeta& cm = meta_.chunk(id);
  ORV_REQUIRE(cm.location.storage_node == node_,
              "BDS instance asked for a chunk on another node: " +
                  cm.location.to_string());
  obs::StageScope stage(obs::context(), "bds.fetch", rpc.parent);
  stage.tag("storage_node", static_cast<std::uint64_t>(node_));
  stage.tag("compute_node", static_cast<std::uint64_t>(compute_node));

  if (auto* inj = fault::context()) {
    if (inj->storage_down(node_)) {
      inj->note_crash_observed(fault::NodeKind::Storage, node_);
      const double timeout = inj->plan().retry.fetch_timeout;
      const double up_at = inj->storage_recovery_time(node_);
      if (timeout > 0 &&
          up_at > cluster_.engine().now() + timeout) {
        // The compute-side caller gives up after the RPC timeout; the
        // retry loop around the fetch decides whether to try again.
        co_await cluster_.engine().sleep(timeout);
        throw fault::TimeoutError(
            "fetch of " + id.to_string() + " timed out: storage node " +
            std::to_string(node_) + " is down");
      }
      if (up_at == fault::kNever) {
        throw fault::FaultError("storage node " + std::to_string(node_) +
                                " permanently lost; chunk " + id.to_string() +
                                " is unreadable");
      }
      co_await cluster_.engine().wait_until(up_at);
    }
    inj->maybe_fail_chunk_read(node_);
  }

  // Streamed shipping: the chunk is read, extracted and sent in a pipeline,
  // so the fetch completes when the most-loaded stage does (this is what
  // lets the cost models' min(Net_bw, readIO_bw * n_s) describe the
  // transfer phase). The real read + extraction happen "instantly" at the
  // virtual completion time.
  const auto chunk_bytes = store_->read(cm.location);
  auto st = std::make_shared<const SubTable>(extract_chunk(chunk_bytes));
  ORV_CHECK(st->id() == id, "extracted sub-table id mismatch");
  if (ranges != nullptr && !ranges->empty()) {
    st = std::make_shared<const SubTable>(filter_subtable(*st, *ranges));
  }

  const sim::Time read_done = cluster_.storage_disk(node_).reserve_read(
      static_cast<double>(cm.location.size));
  const sim::Time extract_done = cluster_.storage_cpu(node_).reserve(
      extract_ops_per_byte_ * static_cast<double>(chunk_bytes.size()));
  auto* agg = net::context();
  if (agg != nullptr && !cluster_.is_local(node_, compute_node)) {
    // Aggregated reply: the egress (source NIC + switch) is charged by the
    // combined frame that carries this reply, so co-destined replies share
    // one per-message overhead. The deliver closure charges the compute
    // NIC — the same byte totals the 3-hop reserve_transfer books.
    const double ship_bytes = static_cast<double>(st->size_bytes());
    auto delivered = std::make_shared<sim::Event>(cluster_.engine());
    Cluster* cluster = &cluster_;
    agg->post(node_, compute_node, ship_bytes, stage.id(),
              [cluster, compute_node, ship_bytes,
               delivered]() -> sim::Task<> {
                co_await cluster->compute_ingress(compute_node, ship_bytes);
                delivered->set();
              });
    co_await cluster_.engine().wait_until(std::max(read_done, extract_done));
    co_await delivered->wait();
  } else {
    const sim::Time sent = cluster_.reserve_transfer(
        node_, compute_node, static_cast<double>(st->size_bytes()));
    // Nested max: a braced initializer_list here would hit a gcc-12
    // coroutine-frame bug ("array used as initializer").
    co_await cluster_.engine().wait_until(
        std::max(read_done, std::max(extract_done, sent)));
  }

  ++stats_.subtables_served;
  stats_.chunk_bytes_read += cm.location.size;
  stats_.subtable_bytes_shipped += st->size_bytes();
  publish_bds(cm.location.size, st->size_bytes());
  co_return st;
}

sim::Task<std::vector<std::shared_ptr<const SubTable>>>
BdsInstance::fetch_batch_to_compute(std::vector<SubTableId> ids,
                                    std::size_t compute_node,
                                    const std::vector<AttrRange>* ranges,
                                    obs::TraceContext rpc) {
  ORV_REQUIRE(!ids.empty(), "batch fetch needs at least one id");
  obs::StageScope stage(obs::context(), "bds.fetch", rpc.parent);
  stage.tag("storage_node", static_cast<std::uint64_t>(node_));
  stage.tag("compute_node", static_cast<std::uint64_t>(compute_node));
  stage.tag("batch", static_cast<std::uint64_t>(ids.size()));

  // Sort a view of the batch by on-disk position to find coalescable runs;
  // results are still returned in the caller's order.
  std::vector<const ChunkMeta*> by_pos;
  by_pos.reserve(ids.size());
  for (const auto& id : ids) {
    const ChunkMeta& cm = meta_.chunk(id);
    ORV_REQUIRE(cm.location.storage_node == node_,
                "BDS instance asked for a chunk on another node: " +
                    cm.location.to_string());
    by_pos.push_back(&cm);
  }
  std::sort(by_pos.begin(), by_pos.end(),
            [](const ChunkMeta* a, const ChunkMeta* b) {
              if (a->location.file_no != b->location.file_no) {
                return a->location.file_no < b->location.file_no;
              }
              return a->location.offset < b->location.offset;
            });

  // One disk reservation per adjacent run: a run pays a single seek, and
  // the spindle's FCFS queue serializes the runs, so the last reservation
  // is the batch's read completion time.
  sim::Time read_done = cluster_.engine().now();
  std::uint64_t num_runs = 0;
  for (std::size_t i = 0; i < by_pos.size();) {
    double run_bytes = static_cast<double>(by_pos[i]->location.size);
    std::size_t j = i + 1;
    while (j < by_pos.size() &&
           by_pos[j]->location.file_no == by_pos[j - 1]->location.file_no &&
           by_pos[j - 1]->location.offset + by_pos[j - 1]->location.size ==
               by_pos[j]->location.offset) {
      run_bytes += static_cast<double>(by_pos[j]->location.size);
      ++j;
    }
    read_done = cluster_.storage_disk(node_).reserve_read(run_bytes);
    ++num_runs;
    i = j;
  }

  // The real reads + extraction, and the virtual charges for them.
  std::vector<std::shared_ptr<const SubTable>> out;
  out.reserve(ids.size());
  double extract_bytes = 0;
  double shipped_bytes = 0;
  for (const auto& id : ids) {
    const ChunkMeta& cm = meta_.chunk(id);
    const auto chunk_bytes = store_->read(cm.location);
    extract_bytes += static_cast<double>(chunk_bytes.size());
    auto st = std::make_shared<const SubTable>(extract_chunk(chunk_bytes));
    ORV_CHECK(st->id() == id, "extracted sub-table id mismatch");
    if (ranges != nullptr && !ranges->empty()) {
      st = std::make_shared<const SubTable>(filter_subtable(*st, *ranges));
    }
    shipped_bytes += static_cast<double>(st->size_bytes());
    ++stats_.subtables_served;
    stats_.chunk_bytes_read += cm.location.size;
    stats_.subtable_bytes_shipped += st->size_bytes();
    publish_bds(cm.location.size, st->size_bytes());
    out.push_back(std::move(st));
  }

  const sim::Time extract_done = cluster_.storage_cpu(node_).reserve(
      extract_ops_per_byte_ * extract_bytes);
  auto* agg = net::context();
  if (agg != nullptr && !cluster_.is_local(node_, compute_node)) {
    // Same aggregated-reply shape as the single-chunk fetch: one posted
    // logical message for the whole coalesced batch.
    auto delivered = std::make_shared<sim::Event>(cluster_.engine());
    Cluster* cluster = &cluster_;
    agg->post(node_, compute_node, shipped_bytes, stage.id(),
              [cluster, compute_node, shipped_bytes,
               delivered]() -> sim::Task<> {
                co_await cluster->compute_ingress(compute_node,
                                                  shipped_bytes);
                delivered->set();
              });
    co_await cluster_.engine().wait_until(std::max(read_done, extract_done));
    co_await delivered->wait();
  } else {
    const sim::Time sent =
        cluster_.reserve_transfer(node_, compute_node, shipped_bytes);
    co_await cluster_.engine().wait_until(
        std::max(read_done, std::max(extract_done, sent)));
  }

  if (auto* ctx = obs::context()) {
    ctx->registry.counter("bds.coalesced_runs").add(num_runs);
    ctx->registry.counter("bds.coalesced_chunks").add(ids.size());
  }
  co_return out;
}

BdsService::BdsService(Cluster& cluster, const MetaDataService& meta,
                       std::vector<std::shared_ptr<ChunkStore>> stores,
                       double extract_ops_per_byte)
    : meta_(meta) {
  ORV_REQUIRE(stores.size() == cluster.num_storage(),
              "one chunk store per storage node required");
  for (std::size_t i = 0; i < stores.size(); ++i) {
    instances_.push_back(std::make_unique<BdsInstance>(
        cluster, i, meta, stores[i], extract_ops_per_byte));
  }
}

BdsInstance& BdsService::instance(std::size_t storage_node) {
  ORV_REQUIRE(storage_node < instances_.size(),
              "storage node index out of range");
  return *instances_[storage_node];
}

BdsInstance& BdsService::instance_for(SubTableId id) {
  return instance(meta_.chunk(id).location.storage_node);
}

BdsStats BdsService::total_stats() const {
  BdsStats total;
  for (const auto& inst : instances_) {
    total.subtables_served += inst->stats().subtables_served;
    total.chunk_bytes_read += inst->stats().chunk_bytes_read;
    total.subtable_bytes_shipped += inst->stats().subtable_bytes_shipped;
  }
  return total;
}

}  // namespace orv
