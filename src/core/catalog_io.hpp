#pragma once

// Catalog persistence: the MetaData Service "may also be used by other
// services to store persistent information" (paper Section 4). A dataset
// directory is self-describing:
//
//   <root>/catalog.orvm     serialized MetaDataService (+ format header)
//   <root>/node<i>/...      each storage node's chunk files
//
// so a session can re-open a dataset without re-scanning or re-generating
// anything.

#include <filesystem>

#include "core/view_framework.hpp"

namespace orv {

/// Writes the catalog file for a dataset rooted at `root`.
void save_catalog(const MetaDataService& meta,
                  const std::filesystem::path& root);

/// Loads the catalog file from a dataset root.
MetaDataService load_catalog(const std::filesystem::path& root);

/// Opens a dataset directory produced by generate_dataset(spec, root) (or
/// by save_catalog over custom stores): loads the catalog and attaches
/// one FileChunkStore per node directory.
ViewFramework open_dataset_dir(const std::filesystem::path& root);

}  // namespace orv
