#pragma once

// ViewFramework: the library's top-level facade (the paper's "view
// creation framework", Figure 2).
//
// It wires the MetaData Service, chunk stores, Basic Data Source Service,
// view registry, query parser and the two execution paths:
//  - local: any view tree, executed in-process against the flat files;
//  - distributed: join-based DDS views, planned by the QPS cost models and
//    executed by the IJ/GH QES on a simulated cluster.
//
// Typical use (see examples/quickstart.cpp):
//   ViewFramework fw(std::move(dataset.meta), dataset.stores);
//   fw.define_view("V1", ViewDef::join(ViewDef::base(t1),
//                                      ViewDef::base(t2), {"x","y","z"}));
//   SubTable rows = fw.query("SELECT * FROM V1 WHERE x IN [0, 16]");

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dds/distributed.hpp"
#include "dds/local_executor.hpp"
#include "dds/view_def.hpp"
#include "query/parser.hpp"

namespace orv {

class ViewFramework {
 public:
  ViewFramework(MetaDataService meta,
                std::vector<std::shared_ptr<ChunkStore>> stores);

  const MetaDataService& meta() const { return meta_; }
  const std::vector<std::shared_ptr<ChunkStore>>& stores() const {
    return stores_;
  }

  /// Registers a named view over the catalog.
  void define_view(const std::string& name, ViewPtr view);

  bool has_view(const std::string& name) const;
  ViewPtr view(const std::string& name) const;

  /// Resolves a FROM target: a view name, else a base-table name.
  ViewPtr resolve(const std::string& name) const;

  /// Parses and locally executes a query.
  SubTable query(const std::string& sql) const;

  /// Parses a query and returns the bound operator tree (for inspection or
  /// distributed execution).
  ViewPtr bind(const std::string& sql) const;

  /// Human-readable plan: the operator tree, the output schema, and — if a
  /// cluster spec is given and the query binds to a distributed DDS shape —
  /// the connectivity-graph stats and the QPS cost-model decision.
  std::string explain(const std::string& sql,
                      const ClusterSpec* cluster_spec = nullptr) const;

  /// Plans and executes a join-based view on a simulated cluster; returns
  /// the planner decision and virtual-time result. `rows_out`, if not
  /// null, receives the materialized rows (or aggregate table).
  DistributedRun query_distributed(const std::string& sql,
                                   const ClusterSpec& cluster_spec,
                                   SubTable* rows_out = nullptr,
                                   QesOptions options = {}) const;

  LocalExecutor& local() { return local_; }

  /// Enables multithreaded local execution (scans and join probes).
  /// `threads` = 0 picks hardware concurrency. Results are bit-identical
  /// to single-threaded execution.
  void enable_parallel_local_execution(std::size_t threads = 0);

 private:
  MetaDataService meta_;
  std::vector<std::shared_ptr<ChunkStore>> stores_;
  std::unique_ptr<ThreadPool> pool_;
  LocalExecutor local_;
  std::map<std::string, ViewPtr> views_;
};

}  // namespace orv
