#include "core/catalog_io.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace orv {

namespace {
constexpr std::uint32_t kCatalogMagic = 0x4d52564fu;  // "ORVM" LE
constexpr std::uint16_t kCatalogVersion = 1;
constexpr const char* kCatalogFile = "catalog.orvm";
}  // namespace

void save_catalog(const MetaDataService& meta,
                  const std::filesystem::path& root) {
  std::filesystem::create_directories(root);
  ByteWriter w;
  w.put_u32(kCatalogMagic);
  w.put_u16(kCatalogVersion);
  meta.serialize(w);
  const std::uint32_t crc = crc32(w.bytes());
  w.put_u32(crc);

  const auto path = root / kCatalogFile;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot write catalog " + path.string());
  const auto bytes = w.bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw IoError("short write to catalog " + path.string());
}

MetaDataService load_catalog(const std::filesystem::path& root) {
  const auto path = root / kCatalogFile;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open catalog " + path.string());
  const auto size = std::filesystem::file_size(path);
  std::vector<std::byte> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (static_cast<std::uintmax_t>(in.gcount()) != size) {
    throw IoError("short read of catalog " + path.string());
  }
  if (bytes.size() < 10) throw FormatError("catalog truncated");

  ByteReader trailer(
      std::span<const std::byte>(bytes).subspan(bytes.size() - 4));
  const std::uint32_t stored_crc = trailer.get_u32();
  const auto body = std::span<const std::byte>(bytes).first(bytes.size() - 4);
  if (stored_crc != crc32(body)) {
    throw FormatError("catalog CRC mismatch: " + path.string());
  }

  ByteReader r(body);
  if (r.get_u32() != kCatalogMagic) {
    throw FormatError("not an orv catalog: " + path.string());
  }
  const auto version = r.get_u16();
  if (version != kCatalogVersion) {
    throw FormatError("unsupported catalog version " +
                      std::to_string(version));
  }
  return MetaDataService::deserialize(r);
}

ViewFramework open_dataset_dir(const std::filesystem::path& root) {
  MetaDataService meta = load_catalog(root);

  // Node count = 1 + max storage node referenced by any chunk.
  std::uint32_t max_node = 0;
  bool any = false;
  for (const TableId t : meta.table_ids()) {
    for (const auto& cm : meta.chunks(t)) {
      max_node = std::max(max_node, cm.location.storage_node);
      any = true;
    }
  }
  ORV_REQUIRE(any, "catalog has no chunks; nothing to open");

  std::vector<std::shared_ptr<ChunkStore>> stores;
  for (std::uint32_t i = 0; i <= max_node; ++i) {
    const auto node_dir = root / strformat("node%u", i);
    if (!std::filesystem::is_directory(node_dir)) {
      throw IoError("dataset directory missing " + node_dir.string());
    }
    stores.push_back(std::make_shared<FileChunkStore>(node_dir));
  }
  return ViewFramework(std::move(meta), std::move(stores));
}

}  // namespace orv
