#include "core/view_framework.hpp"

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace orv {

ViewFramework::ViewFramework(MetaDataService meta,
                             std::vector<std::shared_ptr<ChunkStore>> stores)
    : meta_(std::move(meta)),
      stores_(std::move(stores)),
      local_(meta_, stores_) {}

void ViewFramework::enable_parallel_local_execution(std::size_t threads) {
  pool_ = std::make_unique<ThreadPool>(threads);
  local_.set_pool(pool_.get());
}

void ViewFramework::define_view(const std::string& name, ViewPtr view) {
  ORV_REQUIRE(view != nullptr, "cannot define a null view");
  ORV_REQUIRE(!meta_.has_table(name),
              "view name '" + name + "' collides with a base table");
  // Validate the tree against the catalog now, not at first query.
  view->output_schema(meta_);
  views_[name] = std::move(view);
}

bool ViewFramework::has_view(const std::string& name) const {
  return views_.count(name) > 0;
}

ViewPtr ViewFramework::view(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) throw NotFound("no view named '" + name + "'");
  return it->second;
}

ViewPtr ViewFramework::resolve(const std::string& name) const {
  auto it = views_.find(name);
  if (it != views_.end()) return it->second;
  if (meta_.has_table(name)) {
    return ViewDef::base(meta_.table_by_name(name));
  }
  throw NotFound("FROM target '" + name + "' is neither a view nor a table");
}

ViewPtr ViewFramework::bind(const std::string& sql) const {
  const ParsedQuery parsed = parse_query(sql);
  return bind_query(parsed, resolve(parsed.from), meta_);
}

SubTable ViewFramework::query(const std::string& sql) const {
  return local_.execute(*bind(sql));
}

std::string ViewFramework::explain(const std::string& sql,
                                   const ClusterSpec* cluster_spec) const {
  const ViewPtr bound = bind(sql);
  std::string out = "plan:   " + bound->to_string(meta_) + "\n";
  out += "schema: " + bound->output_schema(meta_)->to_string() + "\n";

  JoinViewShape shape;
  if (!match_join_view(*bound, &shape)) {
    const ViewDef* cur = bound.get();
    while (cur->kind == ViewDef::Kind::Select ||
           cur->kind == ViewDef::Kind::Sort) {
      cur = cur->input.get();
    }
    if (cur->kind == ViewDef::Kind::Aggregate &&
        match_join_view(*cur->input, &shape)) {
      out += "exec:   distributed aggregate over join view\n";
    } else {
      out += "exec:   local executor\n";
      return out;
    }
  } else {
    out += "exec:   distributed join view (or local)\n";
  }

  if (cluster_spec != nullptr) {
    const auto graph =
        ConnectivityGraph::build(meta_, shape.left_table, shape.right_table,
                                 shape.join_attrs, shape.ranges);
    out += "graph:  " +
           graph.stats(meta_, shape.left_table, shape.right_table)
               .to_string() +
           "\n";
    QueryPlanner planner(*cluster_spec);
    JoinQuery jq{shape.left_table, shape.right_table, shape.join_attrs,
                 shape.ranges};
    out += "qps:    " + planner.plan(meta_, graph, jq).to_string() + "\n";
  }
  return out;
}

DistributedRun ViewFramework::query_distributed(const std::string& sql,
                                                const ClusterSpec& cluster_spec,
                                                SubTable* rows_out,
                                                QesOptions options) const {
  ORV_REQUIRE(cluster_spec.num_storage == stores_.size(),
              "cluster spec storage-node count must match the dataset's");
  const ViewPtr bound = bind(sql);

  sim::Engine engine;
  Cluster cluster(engine, cluster_spec);
  BdsService bds(cluster, meta_,
                 std::vector<std::shared_ptr<ChunkStore>>(stores_));
  DistributedDds dds(cluster, bds, meta_);
  if (!dds.supports(*bound)) {
    throw InvalidArgument(
        "query '" + sql +
        "' does not bind to a join-based DDS view; run it locally");
  }
  return dds.execute(*bound, std::move(options), rows_out);
}

}  // namespace orv
