#pragma once

// Extractor functions: interpret application-specific chunk payloads and
// map them to the standard sub-table structure (paper Section 2). One
// extractor per payload layout; the registry resolves the layout id found
// in a chunk header to the extractor that can parse it.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "chunkio/chunk_format.hpp"
#include "subtable/subtable.hpp"

namespace orv {

/// Parses one payload layout into sub-tables, and arranges sub-tables into
/// that layout (the inverse, used when generating datasets).
class Extractor {
 public:
  virtual ~Extractor() = default;

  virtual LayoutId layout() const = 0;
  virtual std::string name() const = 0;

  /// Maps a chunk payload to a sub-table. The returned sub-table carries the
  /// header's id and bounding box.
  virtual SubTable extract(const ChunkHeader& header,
                           std::span<const std::byte> payload) const = 0;

  /// Arranges a sub-table's records into this layout's payload bytes.
  virtual std::vector<std::byte> encode(const SubTable& table) const = 0;
};

/// Identity layout: payload already is packed row-major records.
class RowMajorExtractor final : public Extractor {
 public:
  LayoutId layout() const override { return LayoutId::RowMajor; }
  std::string name() const override { return "row-major"; }
  SubTable extract(const ChunkHeader& header,
                   std::span<const std::byte> payload) const override;
  std::vector<std::byte> encode(const SubTable& table) const override;
};

/// Column dump: all values of attribute 0, then attribute 1, ...
class ColMajorExtractor final : public Extractor {
 public:
  LayoutId layout() const override { return LayoutId::ColMajor; }
  std::string name() const override { return "col-major"; }
  SubTable extract(const ChunkHeader& header,
                   std::span<const std::byte> payload) const override;
  std::vector<std::byte> encode(const SubTable& table) const override;
};

/// Rows grouped into blocks of kBlockedRowsBlock; column-major per block.
class BlockedRowsExtractor final : public Extractor {
 public:
  LayoutId layout() const override { return LayoutId::BlockedRows; }
  std::string name() const override { return "blocked-rows"; }
  SubTable extract(const ChunkHeader& header,
                   std::span<const std::byte> payload) const override;
  std::vector<std::byte> encode(const SubTable& table) const override;
};

/// Maps layout ids to extractor instances. The global() registry holds the
/// three built-in layouts; applications may register custom extractors.
class ExtractorRegistry {
 public:
  ExtractorRegistry();

  static ExtractorRegistry& global();

  void register_extractor(std::unique_ptr<Extractor> extractor);
  const Extractor& for_layout(LayoutId layout) const;

 private:
  std::vector<std::unique_ptr<Extractor>> extractors_;
};

/// Decodes a full chunk (header + payload + CRCs) into a sub-table using the
/// registry; validates CRCs and sets id + bounds from the header.
SubTable extract_chunk(std::span<const std::byte> chunk_bytes,
                       const ExtractorRegistry& registry =
                           ExtractorRegistry::global());

/// Builds full chunk bytes for a sub-table in the given layout.
std::vector<std::byte> make_chunk(const SubTable& table, LayoutId layout,
                                  const ExtractorRegistry& registry =
                                      ExtractorRegistry::global());

}  // namespace orv
