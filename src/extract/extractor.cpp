#include "extract/extractor.hpp"

#include <cstring>

#include "common/error.hpp"

namespace orv {

namespace {

SubTable make_subtable_shell(const ChunkHeader& header) {
  SubTable st(std::make_shared<const Schema>(header.schema),
              SubTableId{header.table, header.chunk});
  return st;
}

void finish(SubTable& st, const ChunkHeader& header) {
  st.set_bounds(header.bounds);
  ORV_CHECK(st.num_rows() == header.num_rows,
            "extractor produced wrong row count");
}

}  // namespace

// ---------------------------------------------------------------- RowMajor

SubTable RowMajorExtractor::extract(const ChunkHeader& header,
                                    std::span<const std::byte> payload) const {
  SubTable st = make_subtable_shell(header);
  st.adopt_bytes({payload.begin(), payload.end()});
  finish(st, header);
  return st;
}

std::vector<std::byte> RowMajorExtractor::encode(const SubTable& table) const {
  auto bytes = table.bytes();
  return {bytes.begin(), bytes.end()};
}

// ---------------------------------------------------------------- ColMajor

SubTable ColMajorExtractor::extract(const ChunkHeader& header,
                                    std::span<const std::byte> payload) const {
  SubTable st = make_subtable_shell(header);
  const Schema& schema = st.schema();
  const std::size_t rs = schema.record_size();
  const std::size_t n = header.num_rows;
  std::vector<std::byte> rows(n * rs);
  std::size_t src = 0;
  for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
    const std::size_t w = attr_size(schema.attr(a).type);
    const std::size_t dst_off = schema.offset(a);
    for (std::size_t r = 0; r < n; ++r) {
      std::memcpy(rows.data() + r * rs + dst_off, payload.data() + src, w);
      src += w;
    }
  }
  ORV_CHECK(src == payload.size(), "col-major payload size mismatch");
  st.adopt_bytes(std::move(rows));
  finish(st, header);
  return st;
}

std::vector<std::byte> ColMajorExtractor::encode(const SubTable& table) const {
  const Schema& schema = table.schema();
  const std::size_t rs = schema.record_size();
  const std::size_t n = table.num_rows();
  std::vector<std::byte> out(n * rs);
  const std::byte* rows = table.bytes().data();
  std::size_t dst = 0;
  for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
    const std::size_t w = attr_size(schema.attr(a).type);
    const std::size_t src_off = schema.offset(a);
    for (std::size_t r = 0; r < n; ++r) {
      std::memcpy(out.data() + dst, rows + r * rs + src_off, w);
      dst += w;
    }
  }
  return out;
}

// ------------------------------------------------------------- BlockedRows

SubTable BlockedRowsExtractor::extract(
    const ChunkHeader& header, std::span<const std::byte> payload) const {
  SubTable st = make_subtable_shell(header);
  const Schema& schema = st.schema();
  const std::size_t rs = schema.record_size();
  const std::size_t n = header.num_rows;
  std::vector<std::byte> rows(n * rs);
  std::size_t src = 0;
  for (std::size_t block = 0; block < n; block += kBlockedRowsBlock) {
    const std::size_t block_rows =
        (n - block < kBlockedRowsBlock) ? n - block : kBlockedRowsBlock;
    for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
      const std::size_t w = attr_size(schema.attr(a).type);
      const std::size_t dst_off = schema.offset(a);
      for (std::size_t r = 0; r < block_rows; ++r) {
        std::memcpy(rows.data() + (block + r) * rs + dst_off,
                    payload.data() + src, w);
        src += w;
      }
    }
  }
  ORV_CHECK(src == payload.size(), "blocked-rows payload size mismatch");
  st.adopt_bytes(std::move(rows));
  finish(st, header);
  return st;
}

std::vector<std::byte> BlockedRowsExtractor::encode(
    const SubTable& table) const {
  const Schema& schema = table.schema();
  const std::size_t rs = schema.record_size();
  const std::size_t n = table.num_rows();
  std::vector<std::byte> out(n * rs);
  const std::byte* rows = table.bytes().data();
  std::size_t dst = 0;
  for (std::size_t block = 0; block < n; block += kBlockedRowsBlock) {
    const std::size_t block_rows =
        (n - block < kBlockedRowsBlock) ? n - block : kBlockedRowsBlock;
    for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
      const std::size_t w = attr_size(schema.attr(a).type);
      const std::size_t src_off = schema.offset(a);
      for (std::size_t r = 0; r < block_rows; ++r) {
        std::memcpy(out.data() + dst, rows + (block + r) * rs + src_off, w);
        dst += w;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------- Registry

ExtractorRegistry::ExtractorRegistry() {
  register_extractor(std::make_unique<RowMajorExtractor>());
  register_extractor(std::make_unique<ColMajorExtractor>());
  register_extractor(std::make_unique<BlockedRowsExtractor>());
}

ExtractorRegistry& ExtractorRegistry::global() {
  static ExtractorRegistry registry;
  return registry;
}

void ExtractorRegistry::register_extractor(
    std::unique_ptr<Extractor> extractor) {
  ORV_REQUIRE(extractor != nullptr, "null extractor");
  extractors_.push_back(std::move(extractor));
}

const Extractor& ExtractorRegistry::for_layout(LayoutId layout) const {
  // Later registrations win, so applications can override built-ins.
  for (auto it = extractors_.rbegin(); it != extractors_.rend(); ++it) {
    if ((*it)->layout() == layout) return **it;
  }
  throw NotFound("no extractor registered for layout id " +
                 std::to_string(static_cast<int>(layout)));
}

SubTable extract_chunk(std::span<const std::byte> chunk_bytes,
                       const ExtractorRegistry& registry) {
  std::size_t payload_offset = 0;
  const ChunkHeader header = decode_chunk_header(chunk_bytes, &payload_offset);
  const auto payload = chunk_payload(chunk_bytes, header, payload_offset);
  return registry.for_layout(header.layout).extract(header, payload);
}

std::vector<std::byte> make_chunk(const SubTable& table, LayoutId layout,
                                  const ExtractorRegistry& registry) {
  const auto payload = registry.for_layout(layout).encode(table);
  ChunkHeader header;
  header.layout = layout;
  header.table = table.id().table;
  header.chunk = table.id().chunk;
  header.num_rows = table.num_rows();
  header.schema = table.schema();
  header.bounds = table.bounds();
  header.payload_size = payload.size();
  return encode_chunk(header, payload);
}

}  // namespace orv
