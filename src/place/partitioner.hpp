#pragma once

// Dependency-free multilevel min-cut graph partitioner (cf. Golab et al.,
// "Distributed Data Placement via Graph Partitioning"; algorithmically the
// classic multilevel scheme of METIS-style partitioners).
//
// The input is a data-affinity graph: vertices are chunks (weighted by
// their byte size), edges connect chunks that are joined together
// (weighted by the transfer volume saved when the pair is co-located).
// partition_graph() maps every vertex to one of `parts` storage nodes so
// that the total weight of edges crossing parts (the *cut* — exactly the
// bytes that must cross the switch) is small, while every part stays
// within (1 + balance_tolerance) of the mean byte load.
//
// Pipeline: coarsen by heavy-edge matching until the graph is small,
// greedily grow an initial balanced partition on the coarsest graph, then
// project back level by level with Kernighan-Lin/Fiduccia-Mattheyses
// boundary refinement at each level. Deterministic for a fixed seed.

#include <cstdint>
#include <vector>

namespace orv::place {

/// Undirected weighted graph in adjacency-list form. Parallel edges are
/// allowed (weights accumulate logically); self-loops are ignored.
struct AffinityGraph {
  /// vertex_weight[v] is v's load (bytes) for the balance constraint.
  std::vector<double> vertex_weight;

  struct Edge {
    std::uint32_t to = 0;
    double weight = 0;
  };
  /// adj[v] holds v's incident edges; add_edge() inserts both directions.
  std::vector<std::vector<Edge>> adj;

  std::size_t num_vertices() const { return vertex_weight.size(); }

  /// Appends a vertex, returns its index.
  std::uint32_t add_vertex(double weight);

  /// Undirected edge u—v of the given weight (ignored when u == v).
  void add_edge(std::uint32_t u, std::uint32_t v, double weight);

  /// Total weight of edges whose endpoints land in different parts.
  /// (Each undirected edge counted once.)
  double cut(const std::vector<std::uint32_t>& part) const;

  /// Sum of vertex weights.
  double total_vertex_weight() const;
};

struct PartitionOptions {
  /// Per-part load may exceed the mean by at most this fraction.
  double balance_tolerance = 0.10;
  /// Coarsening stops once the graph has at most max(coarsen_target,
  /// 8 * parts) vertices.
  std::size_t coarsen_target = 64;
  /// KL/FM passes per uncoarsening level.
  std::size_t refine_passes = 4;
  std::uint64_t seed = 0;
};

/// Maps each vertex to a part in [0, parts). Never returns an assignment
/// violating the balance constraint (capacity = ceil of mean * (1 + tol),
/// and always at least the heaviest single vertex — a vertex heavier than
/// the capacity still has to live somewhere).
std::vector<std::uint32_t> partition_graph(const AffinityGraph& graph,
                                           std::uint32_t parts,
                                           const PartitionOptions& options = {});

}  // namespace orv::place
