#include "place/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace orv::place {

std::uint32_t AffinityGraph::add_vertex(double weight) {
  ORV_REQUIRE(weight >= 0, "vertex weight must be non-negative");
  vertex_weight.push_back(weight);
  adj.emplace_back();
  return static_cast<std::uint32_t>(vertex_weight.size() - 1);
}

void AffinityGraph::add_edge(std::uint32_t u, std::uint32_t v, double weight) {
  if (u == v) return;
  ORV_REQUIRE(u < num_vertices() && v < num_vertices(),
              "edge endpoint out of range");
  ORV_REQUIRE(weight >= 0, "edge weight must be non-negative");
  adj[u].push_back({v, weight});
  adj[v].push_back({u, weight});
}

double AffinityGraph::cut(const std::vector<std::uint32_t>& part) const {
  ORV_REQUIRE(part.size() == num_vertices(),
              "one part id per vertex required");
  double c = 0;
  for (std::uint32_t v = 0; v < num_vertices(); ++v) {
    for (const Edge& e : adj[v]) {
      if (v < e.to && part[v] != part[e.to]) c += e.weight;
    }
  }
  return c;
}

double AffinityGraph::total_vertex_weight() const {
  return std::accumulate(vertex_weight.begin(), vertex_weight.end(), 0.0);
}

namespace {

/// One coarsening level: the coarse graph plus the fine→coarse vertex map.
struct Level {
  AffinityGraph graph;
  std::vector<std::uint32_t> fine_to_coarse;
};

/// Heavy-edge matching: visit vertices in a seeded random order; each
/// unmatched vertex merges with its unmatched neighbour of heaviest edge
/// weight (ties broken by smaller index for determinism). Unmatched
/// vertices map to singleton coarse vertices.
Level coarsen(const AffinityGraph& g, Xoshiro256StarStar& rng) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  constexpr std::uint32_t kUnmatched = 0xffffffffu;
  std::vector<std::uint32_t> match(n, kUnmatched);
  for (const std::uint32_t v : order) {
    if (match[v] != kUnmatched) continue;
    std::uint32_t best = v;  // self-match = stays singleton
    double best_w = -1;
    for (const auto& e : g.adj[v]) {
      if (match[e.to] != kUnmatched) continue;
      if (e.weight > best_w || (e.weight == best_w && e.to < best)) {
        best_w = e.weight;
        best = e.to;
      }
    }
    match[v] = best;
    match[best] = v;
  }

  Level out;
  out.fine_to_coarse.assign(n, kUnmatched);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (out.fine_to_coarse[v] != kUnmatched) continue;
    const std::uint32_t m = match[v];
    const std::uint32_t c =
        out.graph.add_vertex(g.vertex_weight[v] +
                             (m != v ? g.vertex_weight[m] : 0.0));
    out.fine_to_coarse[v] = c;
    if (m != v) out.fine_to_coarse[m] = c;
  }

  // Accumulate fine edges into coarse edges (intra-pair edges vanish);
  // sort-based merge deduplicates parallel coarse edges — the graphs are
  // modest (≤ a few thousand chunks), so O(E log E) is fine.
  struct Triple {
    std::uint32_t a, b;
    double w;
  };
  std::vector<Triple> triples;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t cv = out.fine_to_coarse[v];
    for (const auto& e : g.adj[v]) {
      if (v >= e.to) continue;
      const std::uint32_t cu = out.fine_to_coarse[e.to];
      if (cu == cv) continue;
      triples.push_back({std::min(cv, cu), std::max(cv, cu), e.weight});
    }
  }
  std::sort(triples.begin(), triples.end(), [](const Triple& x,
                                               const Triple& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  for (std::size_t i = 0; i < triples.size();) {
    double w = triples[i].w;
    std::size_t j = i + 1;
    while (j < triples.size() && triples[j].a == triples[i].a &&
           triples[j].b == triples[i].b) {
      w += triples[j].w;
      ++j;
    }
    out.graph.add_edge(triples[i].a, triples[i].b, w);
    i = j;
  }
  return out;
}

/// Greedy region growth on the (coarsest) graph: seed each part with the
/// heaviest unassigned vertex, then repeatedly give the lightest part its
/// most-attached unassigned vertex that fits.
std::vector<std::uint32_t> initial_partition(const AffinityGraph& g,
                                             std::uint32_t parts,
                                             double capacity) {
  const std::size_t n = g.num_vertices();
  constexpr std::uint32_t kNone = 0xffffffffu;
  std::vector<std::uint32_t> part(n, kNone);
  std::vector<double> load(parts, 0.0);

  // Vertices by descending weight (ties by index) — heavy chunks placed
  // first so capacity fragmentation cannot strand them.
  std::vector<std::uint32_t> by_weight(n);
  std::iota(by_weight.begin(), by_weight.end(), 0u);
  std::sort(by_weight.begin(), by_weight.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (g.vertex_weight[a] != g.vertex_weight[b]) {
                return g.vertex_weight[a] > g.vertex_weight[b];
              }
              return a < b;
            });

  for (const std::uint32_t v : by_weight) {
    if (part[v] != kNone) continue;
    // Attachment of v to each part through already-assigned neighbours.
    std::vector<double> attach(parts, 0.0);
    for (const auto& e : g.adj[v]) {
      if (part[e.to] != kNone) attach[part[e.to]] += e.weight;
    }
    std::uint32_t best = kNone;
    double best_score = -1;
    for (std::uint32_t p = 0; p < parts; ++p) {
      if (load[p] + g.vertex_weight[v] > capacity) continue;
      // Prefer attachment; break ties toward the lighter part.
      const double score = attach[p] - 1e-9 * load[p];
      if (best == kNone || score > best_score) {
        best_score = score;
        best = p;
      }
    }
    if (best == kNone) {
      // Nothing fits (capacity < heaviest vertex shouldn't happen, but a
      // pathological tolerance can get here): take the lightest part.
      best = 0;
      for (std::uint32_t p = 1; p < parts; ++p) {
        if (load[p] < load[best]) best = p;
      }
    }
    part[v] = best;
    load[best] += g.vertex_weight[v];
  }
  return part;
}

/// KL/FM-style boundary refinement: repeatedly move the boundary vertex
/// with the largest positive cut gain to its best part, respecting the
/// capacity. Passes stop early when a sweep makes no move.
void refine(const AffinityGraph& g, std::uint32_t parts, double capacity,
            std::size_t passes, std::vector<std::uint32_t>& part) {
  const std::size_t n = g.num_vertices();
  std::vector<double> load(parts, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) load[part[v]] += g.vertex_weight[v];

  for (std::size_t pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (g.adj[v].empty()) continue;
      // Connection weight of v to each part.
      std::vector<double> conn(parts, 0.0);
      for (const auto& e : g.adj[v]) conn[part[e.to]] += e.weight;
      const std::uint32_t from = part[v];
      std::uint32_t best = from;
      double best_gain = 0;
      for (std::uint32_t p = 0; p < parts; ++p) {
        if (p == from) continue;
        if (load[p] + g.vertex_weight[v] > capacity) continue;
        const double gain = conn[p] - conn[from];
        // Strictly positive gain only: zero-gain moves could oscillate.
        if (gain > best_gain ||
            (gain == best_gain && gain > 0 && p < best)) {
          best_gain = gain;
          best = p;
        }
      }
      if (best != from) {
        load[from] -= g.vertex_weight[v];
        load[best] += g.vertex_weight[v];
        part[v] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

std::vector<std::uint32_t> partition_graph(const AffinityGraph& graph,
                                           std::uint32_t parts,
                                           const PartitionOptions& options) {
  ORV_REQUIRE(parts >= 1, "need at least one part");
  const std::size_t n = graph.num_vertices();
  if (n == 0) return {};
  if (parts == 1) return std::vector<std::uint32_t>(n, 0);

  const double total = graph.total_vertex_weight();
  double heaviest = 0;
  for (const double w : graph.vertex_weight) heaviest = std::max(heaviest, w);
  const double capacity =
      std::max(heaviest,
               total / parts * (1.0 + options.balance_tolerance));

  Xoshiro256StarStar rng(options.seed ^ 0x9e3779b97f4a7c15ull);

  // Coarsening ladder. Stop when small enough or matching stalls (< 10%
  // shrink), which happens on star-free graphs long before target size.
  std::vector<Level> levels;
  const AffinityGraph* cur = &graph;
  const std::size_t target =
      std::max<std::size_t>(options.coarsen_target, 8u * parts);
  while (cur->num_vertices() > target) {
    Level next = coarsen(*cur, rng);
    if (next.graph.num_vertices() >
        cur->num_vertices() - cur->num_vertices() / 10) {
      break;
    }
    levels.push_back(std::move(next));
    cur = &levels.back().graph;
  }

  std::vector<std::uint32_t> part =
      initial_partition(*cur, parts, capacity);
  refine(*cur, parts, capacity, options.refine_passes, part);

  // Uncoarsen: project the coarse assignment through each level's map,
  // refining at every step.
  for (std::size_t l = levels.size(); l-- > 0;) {
    const AffinityGraph& fine =
        l == 0 ? graph : levels[l - 1].graph;
    std::vector<std::uint32_t> fine_part(fine.num_vertices());
    for (std::uint32_t v = 0; v < fine.num_vertices(); ++v) {
      fine_part[v] = part[levels[l].fine_to_coarse[v]];
    }
    part = std::move(fine_part);
    refine(fine, parts, capacity, options.refine_passes, part);
  }
  return part;
}

}  // namespace orv::place
