#pragma once

// Data placement policies: how a dataset's chunks map to storage nodes.
//
// The paper places chunks block-cyclically and treats placement as a fixed
// input; Section 4.2 observes the Indexed Join "is found to be sensitive
// to the way datasets are partitioned and was able to benefit from it in
// certain cases". This module turns placement into an optimization: the
// existing layouts (block-cyclic / blocked / random) sit behind a
// PlacementPolicy interface, and GraphPartitionedPlacement min-cut
// partitions the dataset's chunk-affinity graph (the sub-table
// connectivity graph the Indexed Join already builds — cf. Golab et al.,
// "Distributed Data Placement via Graph Partitioning") so that
// frequently-joined chunk pairs co-locate on one storage node. Combined
// with ComponentAssign::PlacementAffinity scheduling and a colocated
// cluster, co-located pairs never cross the switch.

#include <cstdint>
#include <memory>
#include <vector>

#include "datagen/dataset_spec.hpp"
#include "place/partitioner.hpp"

namespace orv {

class MetaDataService;
class ConnectivityGraph;
struct Schedule;

/// Maps every chunk of a dataset's two tables to a storage node.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;
  /// Storage node of the given chunk. `table` must be one of the spec's
  /// two table ids; `chunk` in [0, table's chunk count).
  virtual std::uint32_t node_of(TableId table, ChunkId chunk) const = 0;
};

/// The policy the spec's `placement` field selects, fully determined by
/// the spec (GraphPartitioned partitions the geometric affinity graph with
/// seed spec.seed; Random draws from spec.seed).
std::unique_ptr<PlacementPolicy> make_placement_policy(
    const DatasetSpec& spec);

/// The dataset's chunk-affinity graph, built from the spec's geometry
/// alone (chunk bounding boxes are closed-form; no data is generated).
/// Vertices [0, num_left_chunks) are T1 chunks in chunk-id order, the rest
/// are T2 chunks; vertex weights are chunk bytes, edge weights the
/// transfer volume of one joined pair (left bytes + right bytes).
struct DatasetAffinity {
  place::AffinityGraph graph;
  std::size_t num_left_chunks = 0;
};
DatasetAffinity build_dataset_affinity(const DatasetSpec& spec);

/// Same affinity graph from live metadata + a built connectivity graph
/// (the measured path: works for any pair of registered tables). Vertex
/// order follows `ids`.
struct ChunkAffinity {
  place::AffinityGraph graph;
  std::vector<SubTableId> ids;  // ids[v] is vertex v's sub-table
};
ChunkAffinity build_chunk_affinity(const MetaDataService& meta,
                                   const ConnectivityGraph& graph);

/// True when storage node `storage` is co-located with compute node
/// `compute` under the converged-pairing convention (compute j lives on
/// the same box as storage j mod n_s). Pure pairing predicate; whether a
/// cluster actually exploits it is ClusterSpec::colocated.
inline bool colocated_pair(std::size_t storage, std::size_t compute,
                           std::size_t num_storage) {
  return num_storage > 0 && storage == compute % num_storage;
}

/// Fraction of the schedule's first-touch fetched bytes that are
/// node-local under the pairing above: for each compute node, every
/// distinct sub-table in its pair list is fetched once (the no-eviction
/// assumption); bytes whose chunk lives on the paired storage node are
/// local. This is the planner's locality estimate for the cost model's
/// transfer term. Returns 0 for an empty schedule.
double schedule_local_fraction(const Schedule& schedule,
                               const MetaDataService& meta,
                               std::size_t num_storage);

}  // namespace orv
