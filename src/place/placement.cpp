#include "place/placement.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "graph/connectivity.hpp"
#include "meta/metadata.hpp"
#include "sched/schedule.hpp"

namespace orv {

namespace {

Dim3 chunk_grid(const DatasetSpec& spec, const Dim3& part) {
  return Dim3{spec.grid.x / part.x, spec.grid.y / part.y,
              spec.grid.z / part.z};
}

std::uint64_t num_chunks_of(const DatasetSpec& spec, TableId table) {
  if (table == spec.table1_id) return chunk_grid(spec, spec.part1).volume();
  if (table == spec.table2_id) return chunk_grid(spec, spec.part2).volume();
  throw Error("placement policy asked about a table outside its dataset");
}

std::size_t record_size_of(const DatasetSpec& spec, TableId table) {
  const std::size_t extra =
      table == spec.table1_id ? spec.extra_attrs1 : spec.extra_attrs2;
  return (3 + extra) * sizeof(float);
}

class BlockCyclicPlacement final : public PlacementPolicy {
 public:
  explicit BlockCyclicPlacement(std::size_t num_nodes) : nodes_(num_nodes) {}
  const char* name() const override { return "block-cyclic"; }
  std::uint32_t node_of(TableId, ChunkId chunk) const override {
    return static_cast<std::uint32_t>(chunk % nodes_);
  }

 private:
  std::size_t nodes_;
};

class BlockedPlacement final : public PlacementPolicy {
 public:
  explicit BlockedPlacement(const DatasetSpec& spec)
      : table1_(spec.table1_id) {
    const std::size_t n_s = spec.num_storage_nodes;
    per_node_[0] =
        (num_chunks_of(spec, spec.table1_id) + n_s - 1) / n_s;
    per_node_[1] =
        (num_chunks_of(spec, spec.table2_id) + n_s - 1) / n_s;
  }
  const char* name() const override { return "blocked"; }
  std::uint32_t node_of(TableId table, ChunkId chunk) const override {
    return static_cast<std::uint32_t>(
        chunk / per_node_[table == table1_ ? 0 : 1]);
  }

 private:
  TableId table1_;
  std::uint64_t per_node_[2] = {1, 1};
};

class RandomPlacement final : public PlacementPolicy {
 public:
  explicit RandomPlacement(const DatasetSpec& spec) {
    // One stream per table, drawn in chunk-id order — the same sequence
    // the generator historically produced with its inline RNG (now with
    // the full 64-bit golden-ratio constant; the seed term was truncated
    // to 0x9e3779b97f4aull before this module existed).
    for (const TableId table : {spec.table1_id, spec.table2_id}) {
      Xoshiro256StarStar rng(spec.seed ^ (0x9e3779b97f4a7c15ull + table));
      std::vector<std::uint32_t>& map = map_[table];
      map.reserve(num_chunks_of(spec, table));
      for (std::uint64_t c = 0; c < num_chunks_of(spec, table); ++c) {
        map.push_back(
            static_cast<std::uint32_t>(rng.below(spec.num_storage_nodes)));
      }
    }
  }
  const char* name() const override { return "random"; }
  std::uint32_t node_of(TableId table, ChunkId chunk) const override {
    const auto it = map_.find(table);
    ORV_REQUIRE(it != map_.end() && chunk < it->second.size(),
                "random placement asked about an unknown chunk");
    return it->second[chunk];
  }

 private:
  std::unordered_map<TableId, std::vector<std::uint32_t>> map_;
};

class GraphPartitionedPlacement final : public PlacementPolicy {
 public:
  explicit GraphPartitionedPlacement(const DatasetSpec& spec)
      : table1_(spec.table1_id), table2_(spec.table2_id) {
    const DatasetAffinity aff = build_dataset_affinity(spec);
    place::PartitionOptions opt;
    opt.seed = spec.seed;
    const std::vector<std::uint32_t> part = partition_graph(
        aff.graph, static_cast<std::uint32_t>(spec.num_storage_nodes), opt);
    map1_.assign(part.begin(),
                 part.begin() + static_cast<std::ptrdiff_t>(aff.num_left_chunks));
    map2_.assign(part.begin() + static_cast<std::ptrdiff_t>(aff.num_left_chunks),
                 part.end());
  }
  const char* name() const override { return "graph-partitioned"; }
  std::uint32_t node_of(TableId table, ChunkId chunk) const override {
    const std::vector<std::uint32_t>& map =
        table == table1_ ? map1_ : map2_;
    ORV_REQUIRE((table == table1_ || table == table2_) && chunk < map.size(),
                "graph-partitioned placement asked about an unknown chunk");
    return map[chunk];
  }

 private:
  TableId table1_;
  TableId table2_;
  std::vector<std::uint32_t> map1_;
  std::vector<std::uint32_t> map2_;
};

}  // namespace

std::unique_ptr<PlacementPolicy> make_placement_policy(
    const DatasetSpec& spec) {
  switch (spec.placement) {
    case Placement::BlockCyclic:
      return std::make_unique<BlockCyclicPlacement>(spec.num_storage_nodes);
    case Placement::Blocked:
      return std::make_unique<BlockedPlacement>(spec);
    case Placement::Random:
      return std::make_unique<RandomPlacement>(spec);
    case Placement::GraphPartitioned:
      return std::make_unique<GraphPartitionedPlacement>(spec);
  }
  throw Error("unreachable placement");
}

DatasetAffinity build_dataset_affinity(const DatasetSpec& spec) {
  spec.validate();
  const Dim3 n1 = chunk_grid(spec, spec.part1);
  const Dim3 n2 = chunk_grid(spec, spec.part2);
  const double bytes1 = static_cast<double>(spec.part1.volume()) *
                        static_cast<double>(record_size_of(spec, spec.table1_id));
  const double bytes2 = static_cast<double>(spec.part2.volume()) *
                        static_cast<double>(record_size_of(spec, spec.table2_id));

  DatasetAffinity out;
  out.num_left_chunks = n1.volume();
  for (std::uint64_t c = 0; c < n1.volume(); ++c) {
    out.graph.add_vertex(bytes1);
  }
  for (std::uint64_t c = 0; c < n2.volume(); ++c) {
    out.graph.add_vertex(bytes2);
  }

  // A T1 chunk (ix,iy,iz) spans grid cells [i*p, (i+1)*p - 1] per
  // dimension; the T2 chunks it joins are those whose q-sized spans
  // overlap — index range [i*p / q, ((i+1)*p - 1) / q]. Regular
  // partitioning (validate() enforces min|max) keeps this exact.
  auto overlap_range = [](std::uint64_t i, std::uint64_t p, std::uint64_t q) {
    return std::pair<std::uint64_t, std::uint64_t>{(i * p) / q,
                                                   ((i + 1) * p - 1) / q};
  };
  ChunkId left = 0;
  for (std::uint64_t iz = 0; iz < n1.z; ++iz) {
    for (std::uint64_t iy = 0; iy < n1.y; ++iy) {
      for (std::uint64_t ix = 0; ix < n1.x; ++ix, ++left) {
        const auto [x0, x1] = overlap_range(ix, spec.part1.x, spec.part2.x);
        const auto [y0, y1] = overlap_range(iy, spec.part1.y, spec.part2.y);
        const auto [z0, z1] = overlap_range(iz, spec.part1.z, spec.part2.z);
        for (std::uint64_t jz = z0; jz <= z1; ++jz) {
          for (std::uint64_t jy = y0; jy <= y1; ++jy) {
            for (std::uint64_t jx = x0; jx <= x1; ++jx) {
              const ChunkId right = (jz * n2.y + jy) * n2.x + jx;
              out.graph.add_edge(
                  static_cast<std::uint32_t>(left),
                  static_cast<std::uint32_t>(out.num_left_chunks + right),
                  bytes1 + bytes2);
            }
          }
        }
      }
    }
  }
  return out;
}

ChunkAffinity build_chunk_affinity(const MetaDataService& meta,
                                   const ConnectivityGraph& graph) {
  ChunkAffinity out;
  std::unordered_map<SubTableId, std::uint32_t, SubTableIdHash> index;
  auto vertex_of = [&](SubTableId id) {
    const auto it = index.find(id);
    if (it != index.end()) return it->second;
    const ChunkMeta& cm = meta.chunk(id);
    const std::uint32_t v = out.graph.add_vertex(
        static_cast<double>(cm.num_rows * cm.schema->record_size()));
    index.emplace(id, v);
    out.ids.push_back(id);
    return v;
  };
  for (const SubTablePair& e : graph.edges()) {
    const std::uint32_t u = vertex_of(e.left);
    const std::uint32_t v = vertex_of(e.right);
    out.graph.add_edge(u, v,
                       out.graph.vertex_weight[u] + out.graph.vertex_weight[v]);
  }
  return out;
}

double schedule_local_fraction(const Schedule& schedule,
                               const MetaDataService& meta,
                               std::size_t num_storage) {
  double local = 0;
  double total = 0;
  for (std::size_t node = 0; node < schedule.pairs_per_node.size(); ++node) {
    std::unordered_set<SubTableId, SubTableIdHash> seen;
    for (const SubTablePair& pair : schedule.pairs_per_node[node]) {
      for (const SubTableId id : {pair.left, pair.right}) {
        if (!seen.insert(id).second) continue;
        const ChunkMeta& cm = meta.chunk(id);
        const double bytes =
            static_cast<double>(cm.num_rows * cm.schema->record_size());
        total += bytes;
        if (colocated_pair(cm.location.storage_node, node, num_storage)) {
          local += bytes;
        }
      }
    }
  }
  return total > 0 ? local / total : 0.0;
}

}  // namespace orv
