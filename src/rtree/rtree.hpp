#pragma once

// R-tree (Guttman, SIGMOD'84) over axis-aligned boxes.
//
// Backs the MetaData Service: range predicates over chunk bounding boxes
// resolve to matching chunk ids "efficiently using index structures such as
// R-Trees" (paper Section 4). Values are opaque 64-bit ids.
//
// Supports dynamic insertion with quadratic split and a sort-tile bulk load
// for the common build-once case.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "subtable/bounds.hpp"

namespace orv {

class RTree {
 public:
  /// `dims`: dimensionality of all indexed boxes. `max_entries`: node fan-out
  /// (min fill is max_entries / 2 on splits).
  explicit RTree(std::size_t dims, std::size_t max_entries = 16);

  RTree(RTree&&) noexcept = default;
  RTree& operator=(RTree&&) noexcept = default;
  ~RTree() = default;

  std::size_t dims() const { return dims_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts one (box, value) pair. Boxes may duplicate and overlap freely.
  void insert(const Rect& box, std::uint64_t value);

  /// Builds the tree from scratch using sort-tile packing. Replaces any
  /// existing content. Much faster and better-packed than repeated insert.
  void bulk_load(std::vector<std::pair<Rect, std::uint64_t>> entries);

  /// Invokes `fn` for every stored value whose box overlaps `range`.
  void query(const Rect& range,
             const std::function<void(const Rect&, std::uint64_t)>& fn) const;

  /// Convenience: collects matching values.
  std::vector<std::uint64_t> query(const Rect& range) const;

  /// Tree height (0 for empty, 1 for a root-leaf).
  std::size_t height() const;

  /// Number of nodes (for tests/benchmarks of packing quality).
  std::size_t node_count() const;

 private:
  struct Node;
  struct Entry {
    Rect box;
    std::uint64_t value = 0;          // valid when child == nullptr (leaf)
    std::unique_ptr<Node> child;      // valid for internal entries
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  void insert_impl(std::unique_ptr<Node>& root, Entry entry, bool as_leaf);
  Node* choose_subtree(Node* node, const Rect& box,
                       std::vector<Node*>& path) const;
  std::unique_ptr<Node> split(Node& node);
  static Rect node_box(const Node& node);
  void query_node(const Node& node, const Rect& range,
                  const std::function<void(const Rect&, std::uint64_t)>& fn)
      const;
  std::size_t count_nodes(const Node& node) const;

  std::size_t dims_;
  std::size_t max_entries_;
  std::size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace orv
