#include "rtree/rtree.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace orv {

namespace {

/// Volume that saturates instead of producing NaN for degenerate boxes.
double safe_volume(const Rect& r) {
  double v = 1.0;
  for (std::size_t d = 0; d < r.dims(); ++d) {
    const double len = r[d].length();
    if (!std::isfinite(len)) return std::numeric_limits<double>::infinity();
    v *= (len < 0 ? 0.0 : len);
  }
  return v;
}

double enlargement(const Rect& box, const Rect& add) {
  return safe_volume(box.unite(add)) - safe_volume(box);
}

double center(const Rect& r, std::size_t d) {
  const double c = 0.5 * (r[d].lo + r[d].hi);
  // [-inf, inf] (and NaN-tainted) boxes would give NaN centers, and NaN
  // keys break the sort comparators' strict weak ordering — collapse them
  // to 0 so such boxes sort consistently instead of invoking UB.
  return std::isnan(c) ? 0.0 : c;
}

}  // namespace

RTree::RTree(std::size_t dims, std::size_t max_entries)
    : dims_(dims), max_entries_(max_entries) {
  ORV_REQUIRE(dims >= 1, "RTree needs at least one dimension");
  ORV_REQUIRE(max_entries >= 4, "RTree fan-out must be at least 4");
}

Rect RTree::node_box(const Node& node) {
  ORV_CHECK(!node.entries.empty(), "node_box of empty node");
  Rect box = node.entries.front().box;
  for (std::size_t i = 1; i < node.entries.size(); ++i) {
    box = box.unite(node.entries[i].box);
  }
  return box;
}

void RTree::insert(const Rect& box, std::uint64_t value) {
  ORV_REQUIRE(box.dims() == dims_, "box dimension mismatch");
  Entry entry;
  entry.box = box;
  entry.value = value;
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->leaf = true;
  }

  // Recursive insert returning a split sibling, expressed iteratively via a
  // small lambda-recursion helper.
  struct Inserter {
    RTree* tree;
    std::unique_ptr<Node> operator()(Node& node, Entry&& e) {
      if (node.leaf) {
        node.entries.push_back(std::move(e));
      } else {
        // Guttman ChooseLeaf: minimal enlargement, ties by smaller volume.
        std::size_t best = 0;
        double best_enlarge = std::numeric_limits<double>::infinity();
        double best_volume = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < node.entries.size(); ++i) {
          const double en = enlargement(node.entries[i].box, e.box);
          const double vol = safe_volume(node.entries[i].box);
          if (en < best_enlarge ||
              (en == best_enlarge && vol < best_volume)) {
            best = i;
            best_enlarge = en;
            best_volume = vol;
          }
        }
        auto sibling = (*this)(*node.entries[best].child, std::move(e));
        node.entries[best].box = node_box(*node.entries[best].child);
        if (sibling) {
          Entry se;
          se.box = node_box(*sibling);
          se.child = std::move(sibling);
          node.entries.push_back(std::move(se));
        }
      }
      if (node.entries.size() > tree->max_entries_) return tree->split(node);
      return nullptr;
    }
  } inserter{this};

  auto sibling = inserter(*root_, std::move(entry));
  if (sibling) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry left;
    left.box = node_box(*root_);
    left.child = std::move(root_);
    Entry right;
    right.box = node_box(*sibling);
    right.child = std::move(sibling);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
  }
  ++size_;
}

std::unique_ptr<RTree::Node> RTree::split(Node& node) {
  // Guttman quadratic split. For degenerate (infinite) boxes fall back to a
  // balanced split along the dimension with the largest center spread.
  auto entries = std::move(node.entries);
  node.entries.clear();
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node.leaf;

  bool finite = true;
  for (const auto& e : entries) {
    if (!std::isfinite(safe_volume(e.box))) {
      finite = false;
      break;
    }
  }

  if (!finite) {
    std::size_t best_dim = 0;
    double best_spread = -1.0;
    for (std::size_t d = 0; d < dims_; ++d) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (const auto& e : entries) {
        const double c = center(e.box, d);
        if (std::isfinite(c)) {
          lo = std::min(lo, c);
          hi = std::max(hi, c);
        }
      }
      const double spread = hi - lo;
      if (std::isfinite(spread) && spread > best_spread) {
        best_spread = spread;
        best_dim = d;
      }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [best_dim](const Entry& a, const Entry& b) {
                       return center(a.box, best_dim) < center(b.box, best_dim);
                     });
    const std::size_t half = entries.size() / 2;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      (i < half ? node : *sibling).entries.push_back(std::move(entries[i]));
    }
    return sibling;
  }

  // PickSeeds: pair wasting the most volume.
  std::size_t seed_a = 0;
  std::size_t seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = safe_volume(entries[i].box.unite(entries[j].box)) -
                           safe_volume(entries[i].box) -
                           safe_volume(entries[j].box);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<bool> assigned(entries.size(), false);
  node.entries.push_back(std::move(entries[seed_a]));
  sibling->entries.push_back(std::move(entries[seed_b]));
  assigned[seed_a] = assigned[seed_b] = true;
  Rect box_a = node.entries.front().box;
  Rect box_b = sibling->entries.front().box;
  std::size_t remaining = entries.size() - 2;
  const std::size_t min_fill = max_entries_ / 2;

  while (remaining > 0) {
    // Force assignment if one side must take all the rest to reach min fill.
    if (node.entries.size() + remaining == min_fill) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          box_a = box_a.unite(entries[i].box);
          node.entries.push_back(std::move(entries[i]));
          assigned[i] = true;
        }
      }
      break;
    }
    if (sibling->entries.size() + remaining == min_fill) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          box_b = box_b.unite(entries[i].box);
          sibling->entries.push_back(std::move(entries[i]));
          assigned[i] = true;
        }
      }
      break;
    }
    // PickNext: entry with the largest preference difference.
    std::size_t pick = entries.size();
    double best_diff = -1.0;
    double d_a_pick = 0.0;
    double d_b_pick = 0.0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      const double da = enlargement(box_a, entries[i].box);
      const double db = enlargement(box_b, entries[i].box);
      const double diff = std::fabs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d_a_pick = da;
        d_b_pick = db;
      }
    }
    ORV_CHECK(pick < entries.size(), "quadratic split lost an entry");
    const bool to_a =
        d_a_pick < d_b_pick ||
        (d_a_pick == d_b_pick && node.entries.size() <= sibling->entries.size());
    if (to_a) {
      box_a = box_a.unite(entries[pick].box);
      node.entries.push_back(std::move(entries[pick]));
    } else {
      box_b = box_b.unite(entries[pick].box);
      sibling->entries.push_back(std::move(entries[pick]));
    }
    assigned[pick] = true;
    --remaining;
  }
  return sibling;
}

void RTree::bulk_load(std::vector<std::pair<Rect, std::uint64_t>> entries) {
  root_.reset();
  size_ = entries.size();
  if (entries.empty()) return;
  for (const auto& [box, value] : entries) {
    ORV_REQUIRE(box.dims() == dims_, "box dimension mismatch in bulk_load");
  }

  // Build leaves: recursively sort-tile along successive dimensions.
  std::vector<Entry> level;
  {
    std::vector<std::pair<Rect, std::uint64_t>>& es = entries;
    // Sort by center of dim 0, then tile; within each tile sort by dim 1 ...
    // A single multi-pass sort keyed lexicographically on quantized centers
    // approximates STR well enough for packing.
    std::stable_sort(es.begin(), es.end(),
                     [this](const auto& a, const auto& b) {
                       for (std::size_t d = 0; d < dims_; ++d) {
                         const double ca = center(a.first, d);
                         const double cb = center(b.first, d);
                         if (ca != cb) return ca < cb;
                       }
                       return a.second < b.second;
                     });
    for (std::size_t i = 0; i < es.size(); i += max_entries_) {
      auto leaf = std::make_unique<Node>();
      leaf->leaf = true;
      const std::size_t end = std::min(es.size(), i + max_entries_);
      for (std::size_t j = i; j < end; ++j) {
        Entry e;
        e.box = es[j].first;
        e.value = es[j].second;
        leaf->entries.push_back(std::move(e));
      }
      Entry up;
      up.box = node_box(*leaf);
      up.child = std::move(leaf);
      level.push_back(std::move(up));
    }
  }

  // Build internal levels until one node remains.
  while (level.size() > 1) {
    std::vector<Entry> next;
    for (std::size_t i = 0; i < level.size(); i += max_entries_) {
      auto node = std::make_unique<Node>();
      node->leaf = false;
      const std::size_t end = std::min(level.size(), i + max_entries_);
      for (std::size_t j = i; j < end; ++j) {
        node->entries.push_back(std::move(level[j]));
      }
      Entry up;
      up.box = node_box(*node);
      up.child = std::move(node);
      next.push_back(std::move(up));
    }
    level = std::move(next);
  }

  root_ = std::move(level.front().child);
}

void RTree::query(
    const Rect& range,
    const std::function<void(const Rect&, std::uint64_t)>& fn) const {
  ORV_REQUIRE(range.dims() == dims_, "query dimension mismatch");
  if (root_) query_node(*root_, range, fn);
}

std::vector<std::uint64_t> RTree::query(const Rect& range) const {
  std::vector<std::uint64_t> out;
  query(range, [&out](const Rect&, std::uint64_t v) { out.push_back(v); });
  return out;
}

void RTree::query_node(
    const Node& node, const Rect& range,
    const std::function<void(const Rect&, std::uint64_t)>& fn) const {
  for (const auto& e : node.entries) {
    if (!e.box.overlaps(range)) continue;
    if (node.leaf) {
      fn(e.box, e.value);
    } else {
      query_node(*e.child, range, fn);
    }
  }
}

std::size_t RTree::height() const {
  if (!root_) return 0;
  std::size_t h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    ORV_CHECK(!n->entries.empty(), "internal node with no entries");
    n = n->entries.front().child.get();
    ++h;
  }
  return h;
}

std::size_t RTree::count_nodes(const Node& node) const {
  std::size_t count = 1;
  if (!node.leaf) {
    for (const auto& e : node.entries) count += count_nodes(*e.child);
  }
  return count;
}

std::size_t RTree::node_count() const {
  return root_ ? count_nodes(*root_) : 0;
}

}  // namespace orv
