#include "schema/schema.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace orv {

std::size_t attr_size(AttrType type) {
  switch (type) {
    case AttrType::Int32:
    case AttrType::Float32:
      return 4;
    case AttrType::Int64:
    case AttrType::Float64:
      return 8;
  }
  throw InvalidArgument("unknown AttrType " +
                        std::to_string(static_cast<int>(type)));
}

const char* attr_type_name(AttrType type) {
  switch (type) {
    case AttrType::Int32: return "i32";
    case AttrType::Int64: return "i64";
    case AttrType::Float32: return "f32";
    case AttrType::Float64: return "f64";
  }
  return "?";
}

Schema::Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {
  ORV_REQUIRE(!attrs_.empty(), "schema needs at least one attribute");
  std::unordered_set<std::string> names;
  offsets_.reserve(attrs_.size());
  for (const auto& a : attrs_) {
    ORV_REQUIRE(!a.name.empty(), "attribute names must be non-empty");
    ORV_REQUIRE(names.insert(a.name).second,
                "duplicate attribute name: " + a.name);
    offsets_.push_back(record_size_);
    record_size_ += attr_size(a.type);
  }
}

const Attribute& Schema::attr(std::size_t i) const {
  ORV_REQUIRE(i < attrs_.size(), "attribute index out of range");
  return attrs_[i];
}

std::size_t Schema::offset(std::size_t i) const {
  ORV_REQUIRE(i < offsets_.size(), "attribute index out of range");
  return offsets_[i];
}

std::optional<std::size_t> Schema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return std::nullopt;
}

std::size_t Schema::require_index(const std::string& name) const {
  if (auto idx = index_of(name)) return *idx;
  throw NotFound("no attribute named '" + name + "' in schema " + to_string());
}

Schema Schema::project(const std::vector<std::size_t>& indices) const {
  std::vector<Attribute> out;
  out.reserve(indices.size());
  for (auto i : indices) out.push_back(attr(i));
  return Schema(std::move(out));
}

Schema Schema::join_result(const Schema& left, const Schema& right,
                           const std::vector<std::size_t>& right_key_indices) {
  std::vector<Attribute> out = left.attrs_;
  std::unordered_set<std::size_t> keys(right_key_indices.begin(),
                                       right_key_indices.end());
  std::unordered_set<std::string> names;
  for (const auto& a : out) names.insert(a.name);
  for (std::size_t i = 0; i < right.num_attrs(); ++i) {
    if (keys.count(i)) continue;
    Attribute a = right.attr(i);
    while (names.count(a.name)) a.name += "_r";
    names.insert(a.name);
    out.push_back(std::move(a));
  }
  return Schema(std::move(out));
}

void Schema::serialize(ByteWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(attrs_.size()));
  for (const auto& a : attrs_) {
    w.put_u8(static_cast<std::uint8_t>(a.type));
    w.put_string(a.name);
  }
}

Schema Schema::deserialize(ByteReader& r) {
  const std::uint32_t n = r.get_u32();
  r.check_count(n, 5);  // type byte + string length prefix per attribute
  std::vector<Attribute> attrs;
  attrs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto type = static_cast<AttrType>(r.get_u8());
    ORV_REQUIRE(static_cast<std::uint8_t>(type) <= 3,
                "corrupt schema: bad attribute type");
    std::string name = r.get_string();
    attrs.push_back(Attribute{std::move(name), type});
  }
  return Schema(std::move(attrs));
}

std::string Schema::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i) out += ",";
    out += attrs_[i].name;
    out += ":";
    out += attr_type_name(attrs_[i].type);
  }
  return out;
}

}  // namespace orv
