#pragma once

// Relational schema for virtual tables and sub-tables.
//
// A Schema is an ordered list of typed attributes with a fixed-size,
// packed, row-major record layout. Oil-reservoir tables look like
// (x:f32, y:f32, z:f32, oilp:f32, ...) — up to 21 attributes per the paper.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace orv {

enum class AttrType : std::uint8_t {
  Int32 = 0,
  Int64 = 1,
  Float32 = 2,
  Float64 = 3,
};

/// Size in bytes of one value of the given type.
std::size_t attr_size(AttrType type);

/// Human-readable type name ("f32", "i64", ...).
const char* attr_type_name(AttrType type);

struct Attribute {
  std::string name;
  AttrType type = AttrType::Float32;

  bool operator==(const Attribute&) const = default;
};

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// Immutable attribute list with precomputed packed record layout.
class Schema {
 public:
  /// Attribute names must be non-empty and unique (case-sensitive).
  explicit Schema(std::vector<Attribute> attrs);

  static SchemaPtr make(std::vector<Attribute> attrs) {
    return std::make_shared<const Schema>(std::move(attrs));
  }

  std::size_t num_attrs() const { return attrs_.size(); }
  const Attribute& attr(std::size_t i) const;
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Byte offset of attribute i within a record.
  std::size_t offset(std::size_t i) const;

  /// Packed record size in bytes (the paper's RS_R / RS_S).
  std::size_t record_size() const { return record_size_; }

  /// Index of the attribute with the given name, if present.
  std::optional<std::size_t> index_of(const std::string& name) const;

  /// Like index_of but throws NotFound with a helpful message.
  std::size_t require_index(const std::string& name) const;

  bool has(const std::string& name) const { return index_of(name).has_value(); }

  /// Schema containing only the attributes at `indices`, in that order.
  Schema project(const std::vector<std::size_t>& indices) const;

  /// Schema for the natural-join result: all left attributes followed by the
  /// right attributes that are not join keys; right-side name collisions get
  /// a suffix.
  static Schema join_result(const Schema& left, const Schema& right,
                            const std::vector<std::size_t>& right_key_indices);

  bool operator==(const Schema& other) const { return attrs_ == other.attrs_; }

  void serialize(ByteWriter& w) const;
  static Schema deserialize(ByteReader& r);

  /// "x:f32,y:f32,z:f32,oilp:f32"
  std::string to_string() const;

 private:
  std::vector<Attribute> attrs_;
  std::vector<std::size_t> offsets_;
  std::size_t record_size_ = 0;
};

}  // namespace orv
