#include "schema/value.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace orv {

namespace {

std::uint64_t float_lane(double d) {
  // Normalize -0.0 so it joins with +0.0; propagate the value as an f64 bit
  // pattern so f32 0.5 and f64 0.5 canonicalize identically.
  if (d == 0.0) d = 0.0;
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

AttrType Value::type() const {
  switch (v_.index()) {
    case 0: return AttrType::Int32;
    case 1: return AttrType::Int64;
    case 2: return AttrType::Float32;
    default: return AttrType::Float64;
  }
}

double Value::as_double() const {
  return std::visit([](auto v) { return static_cast<double>(v); }, v_);
}

std::int64_t Value::as_int64() const {
  return std::visit([](auto v) { return static_cast<std::int64_t>(v); }, v_);
}

Value Value::read(AttrType type, const std::byte* p) {
  switch (type) {
    case AttrType::Int32: {
      std::int32_t v;
      std::memcpy(&v, p, sizeof(v));
      return Value(v);
    }
    case AttrType::Int64: {
      std::int64_t v;
      std::memcpy(&v, p, sizeof(v));
      return Value(v);
    }
    case AttrType::Float32: {
      float v;
      std::memcpy(&v, p, sizeof(v));
      return Value(v);
    }
    case AttrType::Float64: {
      double v;
      std::memcpy(&v, p, sizeof(v));
      return Value(v);
    }
  }
  throw InvalidArgument("bad AttrType in Value::read");
}

void Value::write(AttrType type, std::byte* p) const {
  switch (type) {
    case AttrType::Int32: {
      const auto v = static_cast<std::int32_t>(as_int64());
      std::memcpy(p, &v, sizeof(v));
      return;
    }
    case AttrType::Int64: {
      const auto v = as_int64();
      std::memcpy(p, &v, sizeof(v));
      return;
    }
    case AttrType::Float32: {
      const auto v = static_cast<float>(as_double());
      std::memcpy(p, &v, sizeof(v));
      return;
    }
    case AttrType::Float64: {
      const auto v = as_double();
      std::memcpy(p, &v, sizeof(v));
      return;
    }
  }
  throw InvalidArgument("bad AttrType in Value::write");
}

std::uint64_t Value::key_lane() const {
  switch (v_.index()) {
    case 0:
      return static_cast<std::uint64_t>(
          static_cast<std::int64_t>(std::get<std::int32_t>(v_)));
    case 1:
      return static_cast<std::uint64_t>(std::get<std::int64_t>(v_));
    case 2:
      return float_lane(static_cast<double>(std::get<float>(v_)));
    default:
      return float_lane(std::get<double>(v_));
  }
}

std::string Value::to_string() const {
  switch (type()) {
    case AttrType::Int32:
    case AttrType::Int64:
      return strformat("%lld", static_cast<long long>(as_int64()));
    case AttrType::Float32:
    case AttrType::Float64:
      return strformat("%g", as_double());
  }
  return "?";
}

std::uint64_t key_lane_from_bytes(AttrType type, const std::byte* p) {
  switch (type) {
    case AttrType::Int32: {
      std::int32_t v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    }
    case AttrType::Int64: {
      std::int64_t v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<std::uint64_t>(v);
    }
    case AttrType::Float32: {
      float v;
      std::memcpy(&v, p, sizeof(v));
      return float_lane(static_cast<double>(v));
    }
    case AttrType::Float64: {
      double v;
      std::memcpy(&v, p, sizeof(v));
      return float_lane(v);
    }
  }
  throw InvalidArgument("bad AttrType in key_lane_from_bytes");
}

}  // namespace orv
