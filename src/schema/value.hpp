#pragma once

// Dynamically-typed scalar value matching AttrType, plus the key-lane
// canonicalization used for equi-join keys.

#include <cstdint>
#include <span>
#include <string>
#include <variant>

#include "schema/schema.hpp"

namespace orv {

/// One scalar of any supported attribute type.
class Value {
 public:
  Value() : v_(std::int32_t{0}) {}
  Value(std::int32_t v) : v_(v) {}       // NOLINT(google-explicit-constructor)
  Value(std::int64_t v) : v_(v) {}       // NOLINT
  Value(float v) : v_(v) {}              // NOLINT
  Value(double v) : v_(v) {}             // NOLINT

  AttrType type() const;

  /// Numeric widening view; exact for i32/f32/f64, may round for huge i64.
  double as_double() const;

  std::int64_t as_int64() const;

  /// Reads a value of the given type from raw record bytes.
  static Value read(AttrType type, const std::byte* p);

  /// Writes this value (converted to `type`) into raw record bytes.
  void write(AttrType type, std::byte* p) const;

  /// Canonical 64-bit lane for hashing/equality in equi-joins. Floating
  /// values normalize -0.0 to +0.0 so -0.0 joins with +0.0.
  std::uint64_t key_lane() const;

  bool operator==(const Value& other) const {
    return key_lane() == other.key_lane() && type() == other.type();
  }

  std::string to_string() const;

 private:
  std::variant<std::int32_t, std::int64_t, float, double> v_;
};

/// Canonical key lane straight from record bytes (avoids Value round-trip on
/// the join hot path).
std::uint64_t key_lane_from_bytes(AttrType type, const std::byte* p);

}  // namespace orv
