#include "graph/connectivity.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "obs/obs.hpp"

namespace orv {

namespace {

/// Union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// True when the two chunks' bounds overlap on every join attribute.
/// An attribute missing from either schema is unbounded there.
bool overlap_on(const ChunkMeta& lc, const ChunkMeta& rc,
                const std::vector<std::string>& join_attrs) {
  for (const auto& attr : join_attrs) {
    const auto li = lc.schema->index_of(attr);
    const auto ri = rc.schema->index_of(attr);
    if (!li || !ri) continue;  // unbounded side: always overlaps
    if (!lc.bounds[*li].overlaps(rc.bounds[*ri])) return false;
  }
  return true;
}

/// True when the chunk's bounds intersect the query ranges.
bool satisfies_ranges(const ChunkMeta& c, const std::vector<AttrRange>& rs) {
  for (const auto& r : rs) {
    if (auto idx = c.schema->index_of(r.attr)) {
      if (!c.bounds[*idx].overlaps(r.range)) return false;
    }
  }
  return true;
}

}  // namespace

ConnectivityGraph ConnectivityGraph::build(
    const MetaDataService& meta, TableId left_table, TableId right_table,
    const std::vector<std::string>& join_attrs,
    const std::vector<AttrRange>& ranges) {
  ORV_REQUIRE(!join_attrs.empty(), "join needs at least one attribute");
  obs::StageScope stage(obs::context(), "graph.build");
  ConnectivityGraph g;

  // Prune right chunks by the range predicate once; index survivors by
  // position for the R-tree pass below.
  const auto& right_chunks = meta.chunks(right_table);

  // Build an R-tree over the *join attributes only* of surviving right
  // chunks; query it with each surviving left chunk's join-attr box.
  const std::size_t dims = join_attrs.size();
  RTree rtree(dims);
  {
    std::vector<std::pair<Rect, std::uint64_t>> entries;
    for (std::size_t i = 0; i < right_chunks.size(); ++i) {
      if (!satisfies_ranges(right_chunks[i], ranges)) continue;
      Rect box(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        if (auto idx = right_chunks[i].schema->index_of(join_attrs[d])) {
          box[d] = right_chunks[i].bounds[*idx];
        }
      }
      entries.emplace_back(std::move(box), i);
    }
    rtree.bulk_load(std::move(entries));
  }

  for (const auto& lc : meta.chunks(left_table)) {
    if (!satisfies_ranges(lc, ranges)) continue;
    Rect probe(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      if (auto idx = lc.schema->index_of(join_attrs[d])) {
        probe[d] = lc.bounds[*idx];
      }
    }
    rtree.query(probe, [&](const Rect&, std::uint64_t ri) {
      const auto& rc = right_chunks[ri];
      // The R-tree matched on join attrs; re-check (exactly, including any
      // attribute missing on one side) to keep semantics independent of the
      // index structure.
      if (overlap_on(lc, rc, join_attrs)) {
        g.edges_.push_back(SubTablePair{lc.id, rc.id});
      }
    });
  }

  std::sort(g.edges_.begin(), g.edges_.end());
  g.edges_.erase(std::unique(g.edges_.begin(), g.edges_.end()),
                 g.edges_.end());
  g.compute_components();
  if (auto* ctx = obs::context()) {
    ctx->registry.gauge("graph.num_edges")
        .set(static_cast<double>(g.num_edges()));
    ctx->registry.gauge("graph.num_components")
        .set(static_cast<double>(g.num_components()));
  }
  return g;
}

void ConnectivityGraph::compute_components() {
  components_.clear();
  if (edges_.empty()) return;

  // Dense-index the node set: left nodes then right nodes.
  std::unordered_map<std::uint64_t, std::size_t> node_index;
  auto key_of = [](SubTableId id, bool is_left) {
    return (static_cast<std::uint64_t>(is_left) << 63) |
           (static_cast<std::uint64_t>(id.table) << 32) | id.chunk;
  };
  auto index_of = [&](SubTableId id, bool is_left) {
    auto [it, inserted] =
        node_index.try_emplace(key_of(id, is_left), node_index.size());
    return it->second;
  };

  std::vector<std::pair<std::size_t, std::size_t>> edge_nodes;
  edge_nodes.reserve(edges_.size());
  for (const auto& e : edges_) {
    edge_nodes.emplace_back(index_of(e.left, true),
                            index_of(e.right, false));
  }

  UnionFind uf(node_index.size());
  for (const auto& [l, r] : edge_nodes) uf.unite(l, r);

  std::unordered_map<std::size_t, std::size_t> root_to_component;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const std::size_t root = uf.find(edge_nodes[i].first);
    auto [it, inserted] =
        root_to_component.try_emplace(root, components_.size());
    if (inserted) components_.emplace_back();
    Component& comp = components_[it->second];
    comp.pairs.push_back(edges_[i]);
    comp.left_subtables.push_back(edges_[i].left);
    comp.right_subtables.push_back(edges_[i].right);
  }

  for (auto& comp : components_) {
    std::sort(comp.pairs.begin(), comp.pairs.end());
    auto dedup = [](std::vector<SubTableId>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    dedup(comp.left_subtables);
    dedup(comp.right_subtables);
  }
  // Deterministic component order: by first (smallest) pair.
  std::sort(components_.begin(), components_.end(),
            [](const Component& a, const Component& b) {
              return a.pairs.front() < b.pairs.front();
            });
}

GraphStats ConnectivityGraph::stats(const MetaDataService& meta,
                                    TableId left_table,
                                    TableId right_table) const {
  GraphStats s;
  s.num_edges = edges_.size();
  s.num_components = components_.size();
  const double n_left = static_cast<double>(meta.num_chunks(left_table));
  const double n_right = static_cast<double>(meta.num_chunks(right_table));
  if (n_left > 0) s.avg_left_degree = s.num_edges / n_left;
  if (n_right > 0) s.avg_right_degree = s.num_edges / n_right;
  const double T_left = static_cast<double>(meta.table_rows(left_table));
  const double T_right = static_cast<double>(meta.table_rows(right_table));
  if (T_left > 0 && T_right > 0 && n_left > 0 && n_right > 0) {
    const double c_R = T_left / n_left;
    const double c_S = T_right / n_right;
    s.edge_ratio = s.num_edges * c_R * c_S / (T_left * T_right);
  }
  return s;
}

std::string GraphStats::to_string() const {
  return strformat(
      "n_e=%llu components=%llu avg_deg(L/R)=%.2f/%.2f edge_ratio=%.4g",
      (unsigned long long)num_edges, (unsigned long long)num_components,
      avg_left_degree, avg_right_degree, edge_ratio);
}

void ConnectivityGraph::serialize(ByteWriter& w) const {
  w.put_u64(edges_.size());
  for (const auto& e : edges_) {
    w.put_u32(e.left.table);
    w.put_u32(e.left.chunk);
    w.put_u32(e.right.table);
    w.put_u32(e.right.chunk);
  }
}

ConnectivityGraph ConnectivityGraph::deserialize(ByteReader& r) {
  ConnectivityGraph g;
  const std::uint64_t n = r.get_u64();
  r.check_count(n, 16);  // four u32 per edge
  g.edges_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    SubTablePair e;
    e.left.table = r.get_u32();
    e.left.chunk = r.get_u32();
    e.right.table = r.get_u32();
    e.right.chunk = r.get_u32();
    g.edges_.push_back(e);
  }
  std::sort(g.edges_.begin(), g.edges_.end());
  g.compute_components();
  return g;
}

}  // namespace orv
