#pragma once

// Page-level join index service.
//
// "The page-index can be precomputed for common join attributes" (paper
// Section 4.1). This service caches one full connectivity graph per
// (left table, right table, join attributes) key; a query's range
// constraints then prune the cached graph ("any additional range
// constraints may be applied at the sub-table level to prune away
// unwanted edges and nodes") instead of re-pairing chunks. The cache can
// be persisted through the MetaData Service's byte format.

#include <map>
#include <string>
#include <vector>

#include "graph/connectivity.hpp"

namespace orv {

class PageIndexService {
 public:
  explicit PageIndexService(const MetaDataService& meta) : meta_(meta) {}

  /// The full (unconstrained) graph; built once per key and cached.
  const ConnectivityGraph& full_graph(
      TableId left, TableId right, const std::vector<std::string>& attrs);

  /// A range-constrained graph, derived from the cached full graph by
  /// pruning edges whose chunks cannot satisfy the ranges. Equivalent to
  /// ConnectivityGraph::build(..., ranges), without re-pairing.
  ConnectivityGraph pruned_graph(TableId left, TableId right,
                                 const std::vector<std::string>& attrs,
                                 const std::vector<AttrRange>& ranges);

  /// Precomputes (or re-uses) the index for a key; returns whether a
  /// build happened.
  bool precompute(TableId left, TableId right,
                  const std::vector<std::string>& attrs);

  std::size_t num_cached() const { return cache_.size(); }
  std::uint64_t builds() const { return builds_; }
  std::uint64_t hits() const { return hits_; }

  /// Persists every cached index (with its key) for a future session.
  void serialize(ByteWriter& w) const;
  void load(ByteReader& r);

 private:
  using Key = std::tuple<TableId, TableId, std::vector<std::string>>;

  const MetaDataService& meta_;
  std::map<Key, ConnectivityGraph> cache_;
  std::uint64_t builds_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace orv
