#include "graph/page_index.hpp"

#include "common/error.hpp"

namespace orv {

const ConnectivityGraph& PageIndexService::full_graph(
    TableId left, TableId right, const std::vector<std::string>& attrs) {
  const Key key{left, right, attrs};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++builds_;
  auto graph = ConnectivityGraph::build(meta_, left, right, attrs);
  return cache_.emplace(key, std::move(graph)).first->second;
}

ConnectivityGraph PageIndexService::pruned_graph(
    TableId left, TableId right, const std::vector<std::string>& attrs,
    const std::vector<AttrRange>& ranges) {
  const ConnectivityGraph& full = full_graph(left, right, attrs);
  if (ranges.empty()) {
    // Round-trip through the edge list to return an owned copy.
    ByteWriter w;
    full.serialize(w);
    ByteReader r(w.bytes());
    return ConnectivityGraph::deserialize(r);
  }
  auto satisfies = [&](SubTableId id) {
    const ChunkMeta& cm = meta_.chunk(id);
    for (const auto& range : ranges) {
      if (auto idx = cm.schema->index_of(range.attr)) {
        if (!cm.bounds[*idx].overlaps(range.range)) return false;
      }
    }
    return true;
  };
  std::vector<SubTablePair> kept;
  for (const auto& e : full.edges()) {
    if (satisfies(e.left) && satisfies(e.right)) kept.push_back(e);
  }
  ByteWriter ew;
  ew.put_u64(kept.size());
  for (const auto& e : kept) {
    ew.put_u32(e.left.table);
    ew.put_u32(e.left.chunk);
    ew.put_u32(e.right.table);
    ew.put_u32(e.right.chunk);
  }
  ByteReader r(ew.bytes());
  return ConnectivityGraph::deserialize(r);
}

bool PageIndexService::precompute(TableId left, TableId right,
                                  const std::vector<std::string>& attrs) {
  const std::uint64_t before = builds_;
  full_graph(left, right, attrs);
  return builds_ != before;
}

void PageIndexService::serialize(ByteWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(cache_.size()));
  for (const auto& [key, graph] : cache_) {
    w.put_u32(std::get<0>(key));
    w.put_u32(std::get<1>(key));
    const auto& attrs = std::get<2>(key);
    w.put_u32(static_cast<std::uint32_t>(attrs.size()));
    for (const auto& a : attrs) w.put_string(a);
    graph.serialize(w);
  }
}

void PageIndexService::load(ByteReader& r) {
  const std::uint32_t n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const TableId left = r.get_u32();
    const TableId right = r.get_u32();
    const std::uint32_t n_attrs = r.get_u32();
    std::vector<std::string> attrs;
    for (std::uint32_t a = 0; a < n_attrs; ++a) {
      attrs.push_back(r.get_string());
    }
    cache_.insert_or_assign(Key{left, right, std::move(attrs)},
                            ConnectivityGraph::deserialize(r));
  }
}

}  // namespace orv
