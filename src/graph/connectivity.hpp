#pragma once

// Sub-table connectivity graph (page-level join index, paper Section 4.1).
//
// Nodes are basic sub-tables of the two tables; an edge joins a left and a
// right sub-table whose bounding boxes overlap on the join attributes
// (attributes absent from a sub-table are unbounded). Connected components
// are the scheduling unit of the Indexed Join. The graph can be serialized,
// standing in for the paper's precomputed page-level join index.

#include <cstdint>
#include <string>
#include <vector>

#include "meta/metadata.hpp"

namespace orv {

/// One candidate pair: left sub-table (i1,j1), right sub-table (i2,j2).
struct SubTablePair {
  SubTableId left;
  SubTableId right;

  auto operator<=>(const SubTablePair&) const = default;
  std::string to_string() const {
    return left.to_string() + "-" + right.to_string();
  }
};

/// A connected sub-graph with no outgoing edges: `a` left sub-tables joined
/// against `b` right sub-tables.
struct Component {
  std::vector<SubTablePair> pairs;          // lexicographically sorted
  std::vector<SubTableId> left_subtables;   // sorted, deduplicated
  std::vector<SubTableId> right_subtables;  // sorted, deduplicated

  std::size_t a() const { return left_subtables.size(); }
  std::size_t b() const { return right_subtables.size(); }
};

struct GraphStats {
  std::uint64_t num_edges = 0;       // n_e
  std::uint64_t num_components = 0;  // N_C
  double avg_left_degree = 0;        // edges per left sub-table
  double avg_right_degree = 0;       // edges per right sub-table
  double edge_ratio = 0;             // n_e * c_R * c_S / T^2
  std::string to_string() const;
};

class ConnectivityGraph {
 public:
  /// Builds the graph for `left_table` join `right_table` on `join_attrs`,
  /// using the MetaData Service's R-tree to find overlapping pairs.
  /// `ranges` (optional) prunes sub-tables that cannot satisfy the query's
  /// range predicate before pairing.
  static ConnectivityGraph build(const MetaDataService& meta,
                                 TableId left_table, TableId right_table,
                                 const std::vector<std::string>& join_attrs,
                                 const std::vector<AttrRange>& ranges = {});

  const std::vector<SubTablePair>& edges() const { return edges_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Components in deterministic order (by smallest left sub-table id).
  const std::vector<Component>& components() const { return components_; }
  std::size_t num_components() const { return components_.size(); }

  /// Aggregate statistics; c_R/c_S/T taken from the metadata service.
  GraphStats stats(const MetaDataService& meta, TableId left_table,
                   TableId right_table) const;

  void serialize(ByteWriter& w) const;
  static ConnectivityGraph deserialize(ByteReader& r);

 private:
  void compute_components();

  std::vector<SubTablePair> edges_;
  std::vector<Component> components_;
};

}  // namespace orv
