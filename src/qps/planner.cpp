#include "qps/planner.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "cost/calibration.hpp"
#include "obs/calibrate.hpp"
#include "obs/obs.hpp"
#include "place/placement.hpp"

namespace orv {

namespace {

CostBreakdown plan_ij_cost(const CostParams& p, const QesOptions* qes) {
  return qes != nullptr && qes->prefetch_lookahead > 0 ? ij_cost_pipelined(p)
                                                       : ij_cost(p);
}

CostBreakdown plan_gh_cost(const CostParams& p, const QesOptions* qes) {
  return qes != nullptr && qes->gh_double_buffer ? gh_cost_pipelined(p)
                                                 : gh_cost(p);
}

}  // namespace

const char* algorithm_name(Algorithm a) {
  return a == Algorithm::IndexedJoin ? "IndexedJoin" : "GraceHash";
}

std::string PlanDecision::to_string() const {
  return strformat("choose %s%s: IJ %s | GH %s", algorithm_name(chosen),
                   pipelined ? " (pipelined)" : "", ij.to_string().c_str(),
                   gh.to_string().c_str());
}

PlanDecision QueryPlanner::plan(const ConnectivityStats& data,
                                std::size_t rs_left, std::size_t rs_right,
                                double cpu_factor,
                                const QesOptions* qes) const {
  obs::StageScope stage(obs::context(), "qps.plan");
  PlanDecision d;
  d.params = CostParams::from(cluster_, data, rs_left, rs_right, cpu_factor);
  if (qes != nullptr) {
    d.params.batch_bytes = static_cast<double>(qes->batch_bytes);
    d.params.bucket_pair_bytes = static_cast<double>(qes->bucket_pair_bytes);
    d.params.prefetch_lookahead =
        static_cast<double>(qes->prefetch_lookahead);
    if (qes->agg_flush_batches > 0) {
      d.params.agg_flush_batches =
          static_cast<double>(qes->agg_flush_batches);
    }
    if (qes->contention != nullptr && qes->contention->any()) {
      // Shared cluster under load: derate the idle-cluster parameters by
      // the observed residual capacity before costing either algorithm.
      d.params = apply_contention(d.params, *qes->contention);
      stage.tag("contended", std::uint64_t{1});
    }
  }
  d.pipelined = qes != nullptr && qes->pipelined();
  // Per-algorithm selection: the prefetcher only pipelines IJ, the spill
  // double-buffer only pipelines GH. (ij_cost_pipelined at lookahead 0
  // coincides with ij_cost, so the flags compose.)
  d.ij = plan_ij_cost(d.params, qes);
  d.gh = plan_gh_cost(d.params, qes);
  d.chosen = d.ij.total() <= d.gh.total() ? Algorithm::IndexedJoin
                                          : Algorithm::GraceHash;
  if (qes != nullptr && qes->use_calibration && qes->calibrator != nullptr) {
    // Re-plan with the calibrator's learned hardware parameters; the
    // spec-sheet plan is kept as the prior so validation can report the
    // pre/post error ratio.
    d.calibrated = true;
    d.prior_params = d.params;
    d.prior_ij = d.ij;
    d.prior_gh = d.gh;
    d.params = apply_calibration(d.params, qes->calibrator->state());
    if (qes->contention != nullptr && qes->contention->any()) {
      // The calibrator's learned bandwidths describe the same idle
      // hardware; re-derate them for the load observed right now.
      d.params = apply_contention(d.params, *qes->contention);
    }
    d.ij = plan_ij_cost(d.params, qes);
    d.gh = plan_gh_cost(d.params, qes);
    d.chosen = d.ij.total() <= d.gh.total() ? Algorithm::IndexedJoin
                                            : Algorithm::GraceHash;
    stage.tag("calibrated", std::uint64_t{1});
  }
  stage.tag("chosen", std::string(algorithm_name(d.chosen)));
  return d;
}

std::size_t QueryPlanner::suggest_flush_batches(const CostParams& params,
                                                std::size_t max_batches) {
  CostParams p = params;
  p.agg_flush_batches = 1;
  if (p.msg_overhead <= 0) return 1;
  for (std::size_t flush = 1;; flush *= 2) {
    p.agg_flush_batches = static_cast<double>(flush);
    const CostBreakdown c = gh_cost(p);
    const double msg_term =
        p.msg_overhead * gh_h1_frames(p) / std::max(1.0, p.n_s);
    if (flush >= max_batches || msg_term <= 0.02 * c.total()) {
      return std::min(flush, max_batches);
    }
  }
}

PlanDecision QueryPlanner::plan(const MetaDataService& meta,
                                const ConnectivityGraph& graph,
                                const JoinQuery& query, double cpu_factor,
                                const QesOptions* qes) const {
  ConnectivityStats data;
  data.T = meta.table_rows(query.left_table);
  const std::size_t n_left = meta.num_chunks(query.left_table);
  const std::size_t n_right = meta.num_chunks(query.right_table);
  data.c_R = n_left ? data.T / n_left : 0;
  data.c_S = n_right ? meta.table_rows(query.right_table) / n_right : 0;
  data.num_edges = graph.num_edges();
  data.num_components = graph.num_components();
  PlanDecision d =
      plan(data, meta.table_schema(query.left_table)->record_size(),
           meta.table_schema(query.right_table)->record_size(), cpu_factor,
           qes);
  if (cluster_.colocated && qes != nullptr &&
      qes->assign == ComponentAssign::PlacementAffinity) {
    // Locality-aware refinement: predict the placement-affinity schedule
    // the executor will build, measure what fraction of its first-touch
    // bytes stay node-local, and fold that into the IJ transfer term. GH
    // always shuffles through the switch, so its breakdown stands.
    const Schedule predicted = make_schedule_placement_affinity(
        graph, cluster_.num_compute, meta, cluster_.num_storage,
        qes->pair_order, qes->seed);
    d.params.local_fraction =
        schedule_local_fraction(predicted, meta, cluster_.num_storage);
    d.ij = plan_ij_cost(d.params, qes);
    d.chosen = d.ij.total() <= d.gh.total() ? Algorithm::IndexedJoin
                                            : Algorithm::GraceHash;
    if (d.calibrated) {
      // Keep the prior plan refined the same way, so the pre/post error
      // ratio compares models that differ only in hardware parameters.
      d.prior_params.local_fraction = d.params.local_fraction;
      d.prior_ij = plan_ij_cost(d.prior_params, qes);
    }
  }
  return d;
}

QesResult QueryPlanner::execute(const PlanDecision& decision, Cluster& cluster,
                                BdsService& bds, const MetaDataService& meta,
                                const ConnectivityGraph& graph,
                                const JoinQuery& query,
                                const QesOptions& options) const {
  auto* ctx = obs::context();
  obs::StageScope stage(ctx, "qps.execute");
  stage.tag("algorithm", std::string(algorithm_name(decision.chosen)));
  stage.tag("pipelined", static_cast<std::uint64_t>(decision.pipelined));

  QesResult result;
  if (decision.chosen == Algorithm::IndexedJoin) {
    result = run_indexed_join(cluster, bds, meta, graph, query, options);
  } else {
    result = run_grace_hash(cluster, bds, meta, query, options);
  }
  stage.tag("degraded", static_cast<std::uint64_t>(result.degraded ? 1 : 0));

  if (ctx) {
    // Cost-model feedback: what the Section 5 models predicted for this
    // query vs. what the execution measured.
    obs::PlanValidation pv;
    pv.query = strformat("join(t%u,t%u)", query.left_table,
                         query.right_table);
    pv.chosen = algorithm_name(decision.chosen);
    pv.executed = pv.chosen;
    pv.predicted_ij = decision.ij.total();
    pv.predicted_gh = decision.gh.total();
    pv.predicted = decision.predicted_seconds();
    pv.measured = result.elapsed;
    if (decision.calibrated) {
      pv.calibrated = true;
      pv.predicted_prior = decision.predicted_prior_seconds();
    }
    ctx->add_plan_validation(std::move(pv));
  }
  return result;
}

}  // namespace orv
