#pragma once

// Query Planning Service (paper Section 4): chooses between Query
// Execution Systems (Indexed Join vs Grace Hash) using the Section 5 cost
// models, given dataset parameters, system parameters and the query.

#include <string>

#include "cost/cost_model.hpp"
#include "graph/connectivity.hpp"
#include "qes/qes.hpp"

namespace orv {

enum class Algorithm { IndexedJoin, GraceHash };

const char* algorithm_name(Algorithm a);

struct PlanDecision {
  Algorithm chosen = Algorithm::IndexedJoin;
  CostBreakdown ij;
  CostBreakdown gh;
  CostParams params;
  /// True when the pipelined (overlapped fetch/compute) models were used.
  bool pipelined = false;

  /// Set when QesOptions::use_calibration replaced the spec-sheet
  /// parameters with the calibrator's learned ones: `params`/`ij`/`gh`
  /// then hold the calibrated plan, and the prior (uncalibrated) plan is
  /// kept here so validation can report the before/after error ratio.
  bool calibrated = false;
  CostParams prior_params;
  CostBreakdown prior_ij;
  CostBreakdown prior_gh;

  double predicted_seconds() const {
    return chosen == Algorithm::IndexedJoin ? ij.total() : gh.total();
  }
  /// Prior model's prediction for the algorithm actually chosen (only
  /// meaningful when `calibrated`).
  double predicted_prior_seconds() const {
    return chosen == Algorithm::IndexedJoin ? prior_ij.total()
                                            : prior_gh.total();
  }
  std::string to_string() const;
};

class QueryPlanner {
 public:
  explicit QueryPlanner(ClusterSpec cluster) : cluster_(std::move(cluster)) {}

  /// Plans from precomputed dataset statistics (closed-form path). When
  /// `qes` is given and enables an overlap pipeline (QesOptions::
  /// pipelined()), the max-of-stages cost models replace the additive ones
  /// for the corresponding algorithm, parameterized by the options' knobs
  /// (prefetch_lookahead, batch_bytes, bucket_pair_bytes).
  PlanDecision plan(const ConnectivityStats& data, std::size_t rs_left,
                    std::size_t rs_right, double cpu_factor = 1.0,
                    const QesOptions* qes = nullptr) const;

  /// Plans from live metadata + the connectivity graph (measured path):
  /// derives T, c_R, c_S, n_e from what is actually stored.
  PlanDecision plan(const MetaDataService& meta,
                    const ConnectivityGraph& graph, const JoinQuery& query,
                    double cpu_factor = 1.0,
                    const QesOptions* qes = nullptr) const;

  /// Picks a flush threshold for the network message aggregator: the
  /// smallest power of two (up to `max_batches`) at which the per-frame
  /// overhead term stops mattering — i.e. drops to <= 2% of the GH total.
  /// Returns 1 (no aggregation) when msg_overhead is 0 or already cheap.
  static std::size_t suggest_flush_batches(const CostParams& params,
                                           std::size_t max_batches = 64);

  /// Runs the chosen algorithm.
  QesResult execute(const PlanDecision& decision, Cluster& cluster,
                    BdsService& bds, const MetaDataService& meta,
                    const ConnectivityGraph& graph, const JoinQuery& query,
                    const QesOptions& options = {}) const;

  const ClusterSpec& cluster() const { return cluster_; }

 private:
  ClusterSpec cluster_;
};

}  // namespace orv
