#include "cluster/hardware.hpp"

#include "common/strings.hpp"

namespace orv {

HardwareProfile HardwareProfile::modern() {
  HardwareProfile hw;
  hw.cpu_ops_per_sec = 30e9;
  hw.disk_read_bw = mbytes_per_sec(200.0);
  hw.disk_write_bw = mbytes_per_sec(180.0);
  hw.nic_bw = mbits_per_sec(10000.0);
  hw.switch_bw = mbits_per_sec(100000.0);
  hw.local_bus_bw = mbytes_per_sec(8000.0);  // PCIe-era local bus
  hw.memory_bytes = 64ull * kGiB;
  return hw;
}

std::string HardwareProfile::to_string() const {
  return strformat(
      "cpu=%.0fMops/s disk(r/w)=%.0f/%.0fMB/s nic=%.0fMb/s switch=%.0fMb/s "
      "mem=%s",
      cpu_ops_per_sec / 1e6, disk_read_bw / 1e6, disk_write_bw / 1e6,
      nic_bw * 8 / 1e6, switch_bw * 8 / 1e6,
      human_bytes(memory_bytes).c_str());
}

}  // namespace orv
