#pragma once

// Hardware profiles for the simulated coupled storage/compute cluster.
//
// The paper's testbed: PIII 933 MHz nodes, 512 MB RAM, three 100 GB IDE
// disks each, switched Fast Ethernet, up to 10 nodes. paper_2006() encodes
// that configuration; modern() encodes a contemporary node to exercise the
// paper's Section 6.2 claim that growing CPU-vs-I/O ratios favour IJ.

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace orv {

struct HardwareProfile {
  /// CPU rate in "operations"/second (the paper's F). The per-tuple costs
  /// alpha_build = gamma1/F and alpha_lookup = gamma2/F derive from it.
  double cpu_ops_per_sec = 933e6;

  /// Operations per hash-table insert / probe (gamma1, gamma2).
  double gamma_build = 150.0;
  double gamma_lookup = 120.0;

  /// Operations per tuple folded into an aggregation accumulator (the
  /// aggregation-DDS extension).
  double gamma_aggregate = 60.0;

  double disk_read_bw = mbytes_per_sec(35.0);   // bytes/s
  double disk_write_bw = mbytes_per_sec(30.0);  // bytes/s
  double disk_seek = 0.0;  // s per I/O op; sequential chunk I/O dominates

  /// Head-thrash penalty on a *shared* file server when it switches
  /// between reading and writing or between different nodes' bucket-write
  /// streams (Fig. 9). IDE-era seek + rotational latency.
  double shared_stream_switch_seek = 0.009;

  double nic_bw = mbits_per_sec(100.0);     // Fast Ethernet per node
  double switch_bw = mbits_per_sec(1000.0); // aggregate backplane

  /// Fixed per-message cost a storage NIC pays for every outgoing frame
  /// (interrupt + protocol handling, the Grappa-style gamma the cost
  /// model's msg_overhead mirrors). Charged as the storage NICs'
  /// per-op latency, so it is paid once per *frame* — which is what makes
  /// message aggregation (src/net) worth anything. Default 0: the paper's
  /// testbed model and every committed baseline are untouched.
  double net_msg_overhead = 0.0;

  /// Intra-node bus bandwidth for colocated storage/compute pairs
  /// (ClusterSpec::colocated): a local transfer bypasses NIC + switch and
  /// moves at memory/PCI speed instead. 2006-era PCI ~ 400 MB/s.
  double local_bus_bw = mbytes_per_sec(400.0);

  std::uint64_t memory_bytes = 512ull * kMiB;

  /// Derived per-tuple CPU costs (paper Table 1).
  double alpha_build() const { return gamma_build / cpu_ops_per_sec; }
  double alpha_lookup() const { return gamma_lookup / cpu_ops_per_sec; }

  /// The paper's 2006 testbed (defaults above).
  static HardwareProfile paper_2006() { return HardwareProfile{}; }

  /// A contemporary node: ~30x CPU, ~6x disk, 10 GbE. The CPU/I/O ratio
  /// shift the paper anticipates in Section 6.2.
  static HardwareProfile modern();

  std::string to_string() const;
};

}  // namespace orv
