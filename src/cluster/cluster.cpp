#include "cluster/cluster.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace orv {

Disk::Disk(sim::Engine& engine, std::string name, double read_bw,
           double write_bw, double seek, double stream_switch_seek)
    : spindle_(engine, std::move(name), 1.0, seek),
      read_bw_(read_bw),
      write_bw_(write_bw),
      stream_switch_seek_(stream_switch_seek) {
  ORV_REQUIRE(read_bw > 0 && write_bw > 0, "disk bandwidths must be positive");
}

double Disk::switch_penalty(bool writing, std::uint32_t client) {
  if (stream_switch_seek_ <= 0) return 0.0;
  bool switched = false;
  if (writing != last_was_write_) {
    switched = true;  // read <-> write transition moves the head
  } else if (writing && client != last_writer_) {
    switched = true;  // a different node's bucket file
  }
  last_was_write_ = writing;
  if (writing) last_writer_ = client;
  if (!switched) return 0.0;
  ++stream_switches_;
  return stream_switch_seek_;
}

Cluster::Cluster(sim::Engine& engine, ClusterSpec spec)
    : engine_(engine),
      spec_(spec),
      switch_(engine, "switch", spec.hw.switch_bw) {
  ORV_REQUIRE(spec_.num_storage >= 1, "need at least one storage node");
  ORV_REQUIRE(spec_.num_compute >= 1, "need at least one compute node");
  const auto& hw = spec_.hw;

  if (spec_.shared_filesystem) {
    nfs_ = std::make_unique<Disk>(engine_, "nfs", hw.disk_read_bw,
                                  hw.disk_write_bw, hw.disk_seek,
                                  hw.shared_stream_switch_seek);
  } else {
    for (std::size_t i = 0; i < spec_.num_storage; ++i) {
      storage_disks_.push_back(std::make_unique<Disk>(
          engine_, strformat("sdisk%zu", i), hw.disk_read_bw,
          hw.disk_write_bw, hw.disk_seek));
    }
    for (std::size_t j = 0; j < spec_.num_compute; ++j) {
      compute_disks_.push_back(std::make_unique<Disk>(
          engine_, strformat("cdisk%zu", j), hw.disk_read_bw,
          hw.disk_write_bw, hw.disk_seek));
    }
  }

  for (std::size_t i = 0; i < spec_.num_storage; ++i) {
    storage_cpus_.push_back(std::make_unique<sim::Resource>(
        engine_, strformat("scpu%zu", i), hw.cpu_ops_per_sec));
    // Storage NICs carry the per-frame overhead (hw.net_msg_overhead):
    // senders pay it once per egress reservation, i.e. once per frame, so
    // aggregating logical messages into fewer frames amortizes it.
    storage_nics_.push_back(std::make_unique<sim::Resource>(
        engine_, strformat("snic%zu", i), hw.nic_bw, hw.net_msg_overhead));
  }
  for (std::size_t j = 0; j < spec_.num_compute; ++j) {
    compute_cpus_.push_back(std::make_unique<sim::Resource>(
        engine_, strformat("ccpu%zu", j), hw.cpu_ops_per_sec));
    compute_nics_.push_back(std::make_unique<sim::Resource>(
        engine_, strformat("cnic%zu", j), hw.nic_bw));
  }
  if (spec_.colocated) {
    ORV_REQUIRE(hw.local_bus_bw > 0,
                "colocated mode needs a positive local bus bandwidth");
    for (std::size_t j = 0; j < spec_.num_compute; ++j) {
      local_buses_.push_back(std::make_unique<sim::Resource>(
          engine_, strformat("lbus%zu", j), hw.local_bus_bw));
    }
  }
}

Disk& Cluster::storage_disk(std::size_t i) {
  if (spec_.shared_filesystem) return *nfs_;
  ORV_REQUIRE(i < storage_disks_.size(), "storage node index out of range");
  return *storage_disks_[i];
}

Disk& Cluster::compute_disk(std::size_t j) {
  if (spec_.shared_filesystem) return *nfs_;
  ORV_REQUIRE(j < compute_disks_.size(), "compute node index out of range");
  return *compute_disks_[j];
}

sim::Resource& Cluster::compute_cpu(std::size_t j) {
  ORV_REQUIRE(j < compute_cpus_.size(), "compute node index out of range");
  return *compute_cpus_[j];
}

sim::Resource& Cluster::storage_cpu(std::size_t i) {
  ORV_REQUIRE(i < storage_cpus_.size(), "storage node index out of range");
  return *storage_cpus_[i];
}

std::string Cluster::utilization_report() const {
  const double window = engine_.now();
  if (window <= 0) return "(no elapsed time)\n";
  std::string out;
  auto line = [&](const std::string& name, double busy) {
    out += strformat("  %-10s %6.1f%% busy\n", name.c_str(),
                     100.0 * busy / window);
  };
  if (spec_.shared_filesystem) {
    line(nfs_->name(), nfs_->busy_time());
  } else {
    for (const auto& d : storage_disks_) line(d->name(), d->busy_time());
    for (const auto& d : compute_disks_) line(d->name(), d->busy_time());
  }
  for (const auto& r : storage_cpus_) line(r->name(), r->busy_time());
  for (const auto& r : compute_cpus_) line(r->name(), r->busy_time());
  for (const auto& r : storage_nics_) line(r->name(), r->busy_time());
  for (const auto& r : compute_nics_) line(r->name(), r->busy_time());
  for (const auto& r : local_buses_) line(r->name(), r->busy_time());
  line(switch_.name(), switch_.busy_time());
  return out;
}

sim::Resource* Cluster::storage_nic(std::size_t i) {
  ORV_REQUIRE(i < storage_nics_.size(), "storage node index out of range");
  return storage_nics_[i].get();
}

sim::Resource* Cluster::compute_nic(std::size_t j) {
  ORV_REQUIRE(j < compute_nics_.size(), "compute node index out of range");
  return compute_nics_[j].get();
}

sim::Resource* Cluster::local_bus(std::size_t j) {
  ORV_REQUIRE(spec_.colocated, "local buses exist only in colocated mode");
  ORV_REQUIRE(j < local_buses_.size(), "compute node index out of range");
  return local_buses_[j].get();
}

}  // namespace orv
