#pragma once

// Simulated coupled storage/compute cluster (paper Section 4).
//
// Storage nodes hold local disks with the data chunks; compute (joiner)
// nodes have memory for caching and scratch disks for out-of-core
// operations; a switch connects everything. In shared-filesystem mode
// (Fig. 9) a single NFS server resource serves every node's I/O and
// compute nodes have no local disks.

#include <memory>
#include <string>
#include <vector>

#include "cluster/hardware.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace orv {

/// One physical spindle with distinct read/write bandwidths.
///
/// `stream_switch_seek` models head thrashing on a *shared* server
/// (Fig. 9): a seek is charged whenever the spindle transitions between
/// reading and writing, or between bucket-write streams of different
/// client nodes. Sequential reads are assumed elevator/readahead-friendly
/// and never pay the switch penalty among themselves.
class Disk {
 public:
  Disk(sim::Engine& engine, std::string name, double read_bw, double write_bw,
       double seek, double stream_switch_seek = 0.0);

  /// Awaitable chunk read of `bytes` on behalf of `client`.
  auto read(double bytes, std::uint32_t client = 0) {
    return spindle_.use_duration(read_duration(bytes, client));
  }

  /// Awaitable write of `bytes` on behalf of `client`.
  auto write(double bytes, std::uint32_t client = 0) {
    return spindle_.use_duration(write_duration(bytes, client));
  }

  /// Non-awaiting FCFS reservations, for callers that pipeline the disk
  /// with other resources (streamed chunk shipping).
  sim::Time reserve_read(double bytes, std::uint32_t client = 0) {
    return spindle_.reserve_duration(read_duration(bytes, client));
  }
  sim::Time reserve_write(double bytes, std::uint32_t client = 0) {
    return spindle_.reserve_duration(write_duration(bytes, client));
  }

  double read_bw() const { return read_bw_; }
  double write_bw() const { return write_bw_; }
  double bytes_read() const { return bytes_read_; }
  double bytes_written() const { return bytes_written_; }
  double busy_time() const { return spindle_.busy_time(); }
  std::uint64_t stream_switches() const { return stream_switches_; }
  const std::string& name() const { return spindle_.name(); }

 private:
  double read_duration(double bytes, std::uint32_t client) {
    bytes_read_ += bytes;
    return bytes / read_bw_ + switch_penalty(false, client);
  }
  double write_duration(double bytes, std::uint32_t client) {
    bytes_written_ += bytes;
    return bytes / write_bw_ + switch_penalty(true, client);
  }
  double switch_penalty(bool writing, std::uint32_t client);

  sim::Resource spindle_;
  double read_bw_;
  double write_bw_;
  double stream_switch_seek_;
  double bytes_read_ = 0;
  double bytes_written_ = 0;
  bool last_was_write_ = false;
  std::uint32_t last_writer_ = 0xffffffffu;
  std::uint64_t stream_switches_ = 0;
};

struct ClusterSpec {
  std::size_t num_storage = 5;
  std::size_t num_compute = 5;
  HardwareProfile hw = HardwareProfile::paper_2006();

  /// Fig. 9: one shared NFS server serves all I/O; no local scratch disks.
  bool shared_filesystem = false;

  /// Converged deployment: compute node j is co-located with storage node
  /// j mod n_s, and a transfer between a co-located pair moves over the
  /// node's local bus (hw.local_bus_bw) instead of NIC + switch + NIC.
  /// Placement-aware scheduling (ComponentAssign::PlacementAffinity over a
  /// GraphPartitioned layout) exists to maximize such local transfers.
  /// Off by default: the paper's testbed keeps storage and compute apart.
  bool colocated = false;
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterSpec spec);

  sim::Engine& engine() { return engine_; }
  const ClusterSpec& spec() const { return spec_; }
  std::size_t num_storage() const { return spec_.num_storage; }
  std::size_t num_compute() const { return spec_.num_compute; }

  /// The disk holding storage node i's chunks (the shared NFS server in
  /// shared-filesystem mode).
  Disk& storage_disk(std::size_t i);

  /// Compute node j's scratch disk (the shared NFS server in
  /// shared-filesystem mode).
  Disk& compute_disk(std::size_t j);

  /// Compute node j's CPU (rate = hw.cpu_ops_per_sec, in operations/s).
  sim::Resource& compute_cpu(std::size_t j);

  /// Storage node i's CPU (extraction and hashing work on storage nodes).
  sim::Resource& storage_cpu(std::size_t i);

  /// True iff a storage->compute transfer between i and j stays inside one
  /// physical node (colocated mode, pairing j mod n_s — the same predicate
  /// as place::colocated_pair).
  bool is_local(std::size_t i, std::size_t j) const {
    return spec_.colocated && spec_.num_storage > 0 &&
           i == j % spec_.num_storage;
  }

  /// Awaitable transfer of `bytes` from storage node i to compute node j:
  /// parallel reservation over source NIC, switch, destination NIC — or the
  /// node-local bus when the pair is colocated.
  auto transfer_storage_to_compute(std::size_t i, std::size_t j,
                                   double bytes) {
    net_bytes_ += bytes;
    if (is_local(i, j)) {
      local_bytes_ += bytes;
      sim::Resource* path[1] = {local_bus(j)};
      return sim::transfer(engine_, std::span<sim::Resource* const>(path, 1),
                           bytes);
    }
    switch_bytes_ += bytes;
    sim::Resource* path[3] = {storage_nic(i), &switch_, compute_nic(j)};
    return sim::transfer(engine_, std::span<sim::Resource* const>(path, 3),
                         bytes);
  }

  /// Non-awaiting reservation of the storage->compute network path.
  sim::Time reserve_transfer(std::size_t i, std::size_t j, double bytes) {
    net_bytes_ += bytes;
    if (is_local(i, j)) {
      local_bytes_ += bytes;
      sim::Resource* path[1] = {local_bus(j)};
      return sim::reserve_all(std::span<sim::Resource* const>(path, 1), bytes);
    }
    switch_bytes_ += bytes;
    sim::Resource* path[3] = {storage_nic(i), &switch_, compute_nic(j)};
    return sim::reserve_all(std::span<sim::Resource* const>(path, 3), bytes);
  }

  /// Awaitable egress charge (source NIC + switch) without the destination
  /// NIC: lets a sender pace itself while the receiver separately accounts
  /// ingress — avoids convoy coupling when many flows interleave.
  auto storage_egress(std::size_t i, double bytes) {
    sim::Resource* path[2] = {storage_nic(i), &switch_};
    net_bytes_ += bytes;
    switch_bytes_ += bytes;
    return sim::transfer(engine_, std::span<sim::Resource* const>(path, 2),
                         bytes);
  }

  /// Awaitable ingress charge on a compute node's NIC.
  auto compute_ingress(std::size_t j, double bytes) {
    sim::Resource* path[1] = {compute_nic(j)};
    return sim::transfer(engine_, std::span<sim::Resource* const>(path, 1),
                         bytes);
  }

  sim::Resource* storage_nic(std::size_t i);
  sim::Resource* compute_nic(std::size_t j);
  sim::Resource& network_switch() { return switch_; }

  /// Compute node j's intra-node bus (colocated mode only).
  sim::Resource* local_bus(std::size_t j);

  double network_bytes() const { return net_bytes_; }
  /// Bytes that crossed the switch (storage->compute remote transfers plus
  /// shuffle egress). switch_bytes() + local_bytes() need not equal
  /// network_bytes(): ingress-only charges count toward neither.
  double switch_bytes() const { return switch_bytes_; }
  /// Bytes moved over a colocated pair's local bus.
  double local_bytes() const { return local_bytes_; }

  /// Per-compute-node cache capacity in bytes.
  std::uint64_t memory_bytes() const { return spec_.hw.memory_bytes; }

  /// Human-readable per-resource utilization over the engine's lifetime
  /// [0, now]: busy fraction of every disk, NIC, CPU and the switch.
  /// Debugging/reporting aid for single-run engines.
  std::string utilization_report() const;

 private:
  sim::Engine& engine_;
  ClusterSpec spec_;
  std::vector<std::unique_ptr<Disk>> storage_disks_;
  std::vector<std::unique_ptr<Disk>> compute_disks_;
  std::unique_ptr<Disk> nfs_;  // shared-filesystem mode only
  std::vector<std::unique_ptr<sim::Resource>> storage_cpus_;
  std::vector<std::unique_ptr<sim::Resource>> compute_cpus_;
  std::vector<std::unique_ptr<sim::Resource>> storage_nics_;
  std::vector<std::unique_ptr<sim::Resource>> compute_nics_;
  std::vector<std::unique_ptr<sim::Resource>> local_buses_;  // colocated only
  sim::Resource switch_;
  double net_bytes_ = 0;
  double switch_bytes_ = 0;
  double local_bytes_ = 0;
};

}  // namespace orv
