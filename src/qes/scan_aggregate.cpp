#include "qes/scan_aggregate.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "sim/channel.hpp"
#include "sim/event.hpp"
#include "sim/engine.hpp"

namespace orv {

namespace {

struct SaShared {
  SaShared(Cluster& c, BdsService& b, const MetaDataService& m,
           const AggregateQuery& q, const QesOptions& o, SchemaPtr s)
      : cluster(c), bds(b), meta(m), query(q), options(o),
        schema(std::move(s)) {}

  Cluster& cluster;
  BdsService& bds;
  const MetaDataService& meta;
  const AggregateQuery& query;
  const QesOptions& options;
  SchemaPtr schema;

  /// One partial aggregator per storage node, merged by the coordinator.
  std::vector<std::unique_ptr<GroupByAggregator>> partials;
};

/// Storage-node QES: stream local chunks, filter, fold.
sim::Task<> sa_storage(SaShared& sh, std::size_t node, sim::Latch& done) {
  const auto& hw = sh.cluster.spec().hw;
  auto& cpu = sh.cluster.storage_cpu(node);
  GroupByAggregator& agg = *sh.partials[node];

  for (const auto& cm : sh.meta.chunks(sh.query.table)) {
    if (cm.location.storage_node != node) continue;
    // Chunk-level pruning against the query ranges.
    bool prunable = false;
    for (const auto& r : sh.query.ranges) {
      if (auto idx = cm.schema->index_of(r.attr)) {
        if (!cm.bounds[*idx].overlaps(r.range)) {
          prunable = true;
          break;
        }
      }
    }
    if (prunable) continue;

    auto st = co_await sh.bds.instance(node).produce(cm.id);
    const SubTable* rows = st.get();
    SubTable filtered(sh.schema, cm.id);
    if (!sh.query.ranges.empty()) {
      filtered = filter_rows(*st, st->schema(), sh.query.ranges);
      rows = &filtered;
    }
    co_await cpu.use(hw.gamma_aggregate * sh.options.cpu_work_factor *
                     static_cast<double>(rows->num_rows()));
    agg.consume(*rows);
  }

  // Ship the partial state to the coordinator (compute node 0).
  co_await sh.cluster.transfer_storage_to_compute(
      node, 0, static_cast<double>(agg.estimated_state_bytes()));
  done.count_down();
}

/// Coordinator: wait for every partial, merge, finish.
sim::Task<> sa_coordinator(SaShared& sh, sim::Latch& done,
                           GroupByAggregator& merged) {
  co_await done.wait();
  const auto& hw = sh.cluster.spec().hw;
  std::size_t total_groups = 0;
  for (const auto& partial : sh.partials) {
    total_groups += partial->num_groups();
    merged.merge(*partial);
  }
  co_await sh.cluster.compute_cpu(0).use(
      hw.gamma_aggregate * static_cast<double>(total_groups));
}

}  // namespace

QesResult run_distributed_aggregate(Cluster& cluster, BdsService& bds,
                                    const MetaDataService& meta,
                                    const AggregateQuery& query,
                                    const QesOptions& options,
                                    SubTable* out) {
  ORV_REQUIRE(!query.aggs.empty(), "aggregate query needs aggregates");
  auto& engine = cluster.engine();
  const auto schema = meta.table_schema(query.table);

  SaShared sh{cluster, bds, meta, query, options, schema};
  for (std::size_t i = 0; i < cluster.num_storage(); ++i) {
    sh.partials.push_back(std::make_unique<GroupByAggregator>(
        schema, query.group_by, query.aggs));
  }
  GroupByAggregator merged(schema, query.group_by, query.aggs);

  const double net0 = cluster.network_bytes();
  const double start = engine.now();
  sim::Latch done(engine, cluster.num_storage());
  std::vector<sim::JoinHandle> handles;
  for (std::size_t i = 0; i < cluster.num_storage(); ++i) {
    handles.push_back(
        engine.spawn(sa_storage(sh, i, done), strformat("agg-node-%zu", i)));
  }
  handles.push_back(engine.spawn(sa_coordinator(sh, done, merged),
                                 "agg-coordinator"));
  engine.run();
  for (const auto& h : handles) {
    ORV_CHECK(h.done(), "aggregate process did not finish");
  }

  QesResult result;
  result.elapsed = engine.now() - start;
  result.result_tuples = merged.num_groups();
  result.network_bytes = cluster.network_bytes() - net0;
  SubTable table = merged.finish();
  result.result_fingerprint = table.unordered_fingerprint();
  if (out != nullptr) *out = std::move(table);
  return result;
}

}  // namespace orv
