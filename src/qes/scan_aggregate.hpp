#pragma once

// Distributed scan-aggregate QES: the paper's future-work DDS extension
// ("a view definition may involve aggregation operations such as AVG or
// SUM") over a *single* virtual table.
//
// Each storage node's QES streams its local chunks through the BDS,
// filters, and folds rows into a local partial aggregator (mergeable
// sum/count/min/max states); the small partial states then travel to a
// coordinator compute node and merge. Network traffic is proportional to
// the number of groups, not the number of rows.

#include "bds/bds.hpp"
#include "cluster/cluster.hpp"
#include "dds/aggregate.hpp"
#include "meta/metadata.hpp"
#include "qes/qes.hpp"

namespace orv {

struct AggregateQuery {
  TableId table = 0;
  std::vector<AttrRange> ranges;
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;
};

/// Runs the aggregation on the simulated cluster; the final (small) table
/// is written to *out if non-null. QesResult::result_tuples counts the
/// output groups; network bytes reflect partial-state shipping only.
QesResult run_distributed_aggregate(Cluster& cluster, BdsService& bds,
                                    const MetaDataService& meta,
                                    const AggregateQuery& query,
                                    const QesOptions& options = {},
                                    SubTable* out = nullptr);

}  // namespace orv
