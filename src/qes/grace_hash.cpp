// Grace Hash join QES (paper Section 4.2, network-free bucket-join
// variant).
//
// Phase 1 (partition): each storage node's QES reads its local chunks of
// both tables, applies h1 to route record batches to compute nodes; each
// compute node applies h2 to split received records into scratch-disk
// buckets. By default the receiver charges network + bucket write per
// batch sequentially, which is what makes the cost model's Transfer +
// Write terms additive (Section 5.2). With QesOptions::gh_double_buffer
// the spill of batch k overlaps the receive of batch k+1 (one outstanding
// reservation), and phase 2 reserves the next bucket's read-back while the
// CPU joins the current one — the pipelined cost model's max-of-stages.
//
// Phase 2 (bucket join): after a barrier, each compute node reads its
// bucket pairs back and joins them in memory, independently of the network.

#include <deque>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "fault/fault.hpp"
#include "net/aggregator.hpp"
#include "obs/obs.hpp"
#include "qes/qes.hpp"
#include "qes/sampler.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"

namespace orv {

namespace {

/// A batch of packed records of one table, routed to one compute node.
/// `trace` carries the sender's span across the node boundary: the
/// receiver's per-batch ingest span records it as its causal link, which
/// is what stitches the h1 transfer into one cross-node DAG.
struct Batch {
  bool left = true;
  std::uint32_t src_node = 0;
  std::uint32_t rows = 0;
  std::vector<std::byte> bytes;
  obs::TraceContext trace;
};

struct GhShared {
  GhShared(Cluster& c, BdsService& b, const MetaDataService& m,
           const JoinQuery& q, const QesOptions& o, SchemaPtr ls,
           SchemaPtr rs, SchemaPtr result)
      : cluster(c), bds(b), meta(m), query(q), options(o),
        left_schema(std::move(ls)), right_schema(std::move(rs)),
        result_schema(std::move(result)) {}

  Cluster& cluster;
  BdsService& bds;
  const MetaDataService& meta;
  const JoinQuery& query;
  const QesOptions& options;

  SchemaPtr left_schema;
  SchemaPtr right_schema;
  SchemaPtr result_schema;
  std::size_t n_buckets = 1;

  std::vector<std::unique_ptr<sim::Channel<Batch>>> to_compute;

  // Accumulators.
  std::uint64_t result_tuples = 0;
  std::uint64_t fingerprint = 0;
  JoinStats stats;
  double partition_phase_end = 0;

  // Round-based recovery protocol state; only touched when a fault
  // injector is installed (fault-free runs take the single-round fast
  // path with no extra synchronization).
  std::unique_ptr<sim::Latch> drain_latch;  // one count per compute node
  std::unique_ptr<sim::Event> round_gate;   // set once the round's verdict is in
  std::vector<std::unique_ptr<sim::Event>> retired_gates;
  bool partition_complete = false;
  std::vector<char> final_dead;  // valid once partition_complete is set

  // Fault accounting.
  std::uint64_t fetch_retries = 0;
  std::uint64_t rows_repartitioned = 0;
  std::uint64_t compute_nodes_lost = 0;

  /// Logical h1 batch messages sent (the cost model's message count; the
  /// physical frame count is read off the switch and is smaller when an
  /// aggregator is installed).
  std::uint64_t h1_messages_sent = 0;

  /// Per-receiver work accounting (skew diagnosis): busy seconds over both
  /// phases, h1 rows received, batch bytes ingested.
  std::vector<QesResult::NodeWork> node_work;

  // Trace-context plumbing + occupancy-sampler lifecycle (mirrors the
  // Indexed Join): the query completes when the last compute node
  // finishes, and that instant — not the sampler's trailing tick — is the
  // measured elapsed time.
  std::uint64_t trace_id = 0;
  obs::SpanId query_span;
  bool sampling = false;
  bool done = false;
  double finished_at = -1;
  std::size_t computes_left = 0;
  ProbeSet probes;
};

/// Routing chain for one row: candidate k is h1 re-salted k times; the
/// destination is the first alive candidate. k = 0 reproduces the plain h1
/// routing, so with no dead nodes this is byte-identical to the fault-free
/// partitioner. Rows with equal join keys hash identically at every k and
/// therefore share the whole chain — matching left/right rows stay
/// co-located no matter which prefix of the chain has died.
std::size_t chain_dest(const JoinKey& key, const std::byte* row,
                       std::size_t n_dest, const std::vector<char>& dead) {
  for (std::uint64_t k = 0; k < 64; ++k) {
    const std::size_t cand =
        key.hash_row(row, kSaltGraceH1 + k * 0x9e3779b97f4a7c15ull) % n_dest;
    if (dead.empty() || !dead[cand]) return cand;
  }
  // Pathological chain: fall back to the first survivor (key-independent,
  // hence the same for every row — co-location still holds).
  for (std::size_t j = 0; j < n_dest; ++j) {
    if (!dead[j]) return j;
  }
  throw fault::FaultError("grace hash: no surviving compute node to route to");
}

/// Per-destination batch buffers for one storage process and one table.
/// `dead` is the routing dead-set for this partition round (empty on the
/// fault-free path and in round 0).
class Partitioner {
 public:
  /// `parent` is the sending task's partition/repartition span: every
  /// per-batch send span nests under it and rides the Batch to the
  /// receiver.
  Partitioner(GhShared& sh, bool left, std::uint32_t src,
              const Schema& schema, obs::SpanId parent,
              std::vector<char> dead = {})
      : sh_(sh),
        left_(left),
        src_(src),
        record_size_(schema.record_size()),
        key_(JoinKey::resolve(schema, sh.query.join_attrs)),
        parent_(parent),
        dead_(std::move(dead)),
        buffers_(sh.to_compute.size()) {}

  sim::Task<> add_subtable(const SubTable& st) {
    const std::size_t n_dest = buffers_.size();
    for (std::size_t r = 0; r < st.num_rows(); ++r) {
      const std::byte* row = st.row(r);
      const std::size_t dest = chain_dest(key_, row, n_dest, dead_);
      auto& buf = buffers_[dest];
      buf.insert(buf.end(), row, row + record_size_);
      if (buf.size() >= sh_.options.batch_bytes) {
        co_await flush(dest);
      }
    }
  }

  /// Recovery rounds only: re-send exactly the rows whose copy was lost,
  /// i.e. rows whose destination under `prev_dead` has since died. Rows
  /// whose previous destination survives are skipped — their copy is still
  /// bucketed there, and re-sending would duplicate them.
  sim::Task<> add_lost_rows(const SubTable& st,
                            const std::vector<char>& prev_dead) {
    const std::size_t n_dest = buffers_.size();
    for (std::size_t r = 0; r < st.num_rows(); ++r) {
      const std::byte* row = st.row(r);
      const std::size_t prev = chain_dest(key_, row, n_dest, prev_dead);
      if (!dead_[prev]) continue;
      ++sh_.rows_repartitioned;
      const std::size_t dest = chain_dest(key_, row, n_dest, dead_);
      auto& buf = buffers_[dest];
      buf.insert(buf.end(), row, row + record_size_);
      if (buf.size() >= sh_.options.batch_bytes) {
        co_await flush(dest);
      }
    }
  }

  sim::Task<> flush_all() {
    for (std::size_t dest = 0; dest < buffers_.size(); ++dest) {
      if (!buffers_[dest].empty()) co_await flush(dest);
    }
  }

 private:
  sim::Task<> flush(std::size_t dest) {
    Batch batch;
    batch.left = left_;
    batch.src_node = src_;
    batch.rows = static_cast<std::uint32_t>(buffers_[dest].size() /
                                            record_size_);
    batch.bytes = std::move(buffers_[dest]);
    buffers_[dest].clear();
    const double batch_bytes = static_cast<double>(batch.bytes.size());
    auto* ctx = obs::context();
    obs::StageScope send_stage(ctx, "gh.send", parent_);
    batch.trace = obs::TraceContext{sh_.trace_id, send_stage.id()};
    ++sh_.h1_messages_sent;
    if (auto* agg = net::context()) {
      // Aggregated path: hand the batch to the per-(src,dst) flow and
      // return immediately. The aggregator charges one egress per combined
      // frame (and rolls the fault dice per frame); the deliver closure
      // runs after the frame crosses the switch. It reads the channel slot
      // through sh_ at delivery time, so recovery-round channel swaps are
      // safe — gh_storage/gh_repartition drain the node before the
      // coordinator ever closes or swaps a round's channels.
      auto payload = std::make_shared<Batch>(std::move(batch));
      GhShared* sh = &sh_;
      agg->post(src_, dest, batch_bytes, send_stage.id(),
                [sh, dest, payload]() -> sim::Task<> {
                  co_await sh->to_compute[dest]->send(std::move(*payload));
                });
      co_return;
    }
    auto* inj = fault::context();
    std::uint64_t retransmits = 0;
    while (true) {
      // Egress (source NIC + switch) is charged here, pacing the sender;
      // the receiver charges its own NIC + bucket write when it processes
      // the batch. Splitting the two sides keeps per-flow accounting
      // additive without convoy coupling across source NICs.
      co_await sh_.cluster.storage_egress(src_, batch_bytes);
      if (inj) {
        const auto act = inj->on_message(src_, dest);
        if (act.drop) {
          // Lost on the wire: the sender notices via timeout and resends,
          // so drops cost virtual time but never data. The retransmit
          // edge gets its own span so trace assembly can see retries.
          obs::StageScope retrans(ctx, "gh.retransmit", send_stage.id());
          co_await sh_.cluster.engine().sleep(
              inj->plan().retransmit_timeout);
          retrans.close();
          ++retransmits;
          continue;
        }
        if (act.delay > 0) {
          co_await sh_.cluster.engine().sleep(act.delay);
        }
      }
      co_await sh_.to_compute[dest]->send(std::move(batch));
      break;
    }
    if (retransmits > 0) send_stage.tag("retransmits", retransmits);
  }

  GhShared& sh_;
  bool left_;
  std::uint32_t src_;
  std::size_t record_size_;
  JoinKey key_;
  obs::SpanId parent_;
  std::vector<char> dead_;
  std::vector<std::vector<std::byte>> buffers_;
};

/// BDS produce with the same timeout/backoff retry the Indexed Join's
/// fetches get: transient injected read errors retry; a permanently lost
/// storage node surfaces as a clean FaultError.
sim::Task<std::shared_ptr<const SubTable>> produce_with_retry(
    GhShared& sh, std::size_t node, SubTableId id, obs::TraceContext rpc) {
  auto* inj = fault::context();
  const fault::RetryPolicy policy =
      inj ? inj->plan().retry : fault::RetryPolicy{};
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      co_await sh.cluster.engine().sleep(policy.backoff(attempt));
    }
    try {
      co_return co_await sh.bds.instance(node).produce(id, rpc);
    } catch (const IoError& e) {
      if (!inj) throw;  // genuine device error: not ours to mask
      if (attempt + 1 >= policy.max_attempts) {
        throw fault::FaultError("produce of " + id.to_string() +
                                " failed after " +
                                std::to_string(attempt + 1) +
                                " attempts: " + e.what());
      }
      inj->note_retry();
      ++sh.fetch_retries;
    }
  }
}

/// Reads a node's local chunks of one table into a small bounded queue, so
/// disk reads pipeline behind partitioning/sending (read-ahead; this is
/// what hides the chunk reads inside the model's Transfer term).
sim::Task<> gh_reader(GhShared& sh, std::size_t node, TableId table,
                      sim::Channel<std::shared_ptr<const SubTable>>& out,
                      obs::TraceContext rpc) {
  for (const auto& cm : sh.meta.chunks(table)) {
    if (cm.location.storage_node != node) continue;
    auto st = co_await produce_with_retry(sh, node, cm.id, rpc);
    co_await out.send(std::move(st));
  }
  out.close();
}

/// Storage-node QES: stream local chunks of both tables through h1.
sim::Task<> gh_storage(GhShared& sh, std::size_t node, sim::Latch& done) {
  obs::StageScope stage(obs::context(), "gh.partition", sh.query_span);
  stage.tag("storage_node", static_cast<std::uint64_t>(node));
  Partitioner left_part(sh, true, static_cast<std::uint32_t>(node),
                        *sh.left_schema, stage.id());
  Partitioner right_part(sh, false, static_cast<std::uint32_t>(node),
                         *sh.right_schema, stage.id());

  auto stream_table = [](GhShared& s, std::size_t n, TableId table,
                         Partitioner& part,
                         obs::SpanId parent) -> sim::Task<> {
    sim::Channel<std::shared_ptr<const SubTable>> queue(s.cluster.engine(),
                                                        2);
    auto reader = s.cluster.engine().spawn(
        gh_reader(s, n, table, queue, obs::TraceContext{s.trace_id, parent}),
        strformat("gh-reader-%zu-t%u", n, table));
    while (true) {
      auto st = co_await queue.recv();
      if (!st) break;
      if (!s.query.ranges.empty()) {
        const SubTable filtered =
            filter_rows(**st, (*st)->schema(), s.query.ranges);
        co_await part.add_subtable(filtered);
      } else {
        co_await part.add_subtable(**st);
      }
    }
    co_await reader.join();
  };

  co_await stream_table(sh, node, sh.query.left_table, left_part, stage.id());
  co_await left_part.flush_all();
  co_await stream_table(sh, node, sh.query.right_table, right_part,
                        stage.id());
  co_await right_part.flush_all();
  if (auto* agg = net::context()) {
    // Every posted batch must be in its destination channel before the
    // coordinator learns this sender is done — otherwise it would close
    // the round's channels under buffered messages.
    co_await agg->drain(node);
  }
  done.count_down();
}

/// Recovery-round sender: re-reads this storage node's local chunks of
/// both tables and re-sends the rows whose previous chain destination has
/// died. Every copy that could have landed on a dead node is lost with the
/// node (dead receivers discard their whole partition state), so re-sent
/// rows appear exactly once in the surviving buckets.
sim::Task<> gh_repartition(GhShared& sh, std::size_t node,
                           std::vector<char> prev_dead,
                           std::vector<char> dead) {
  obs::StageScope stage(obs::context(), "gh.repartition", sh.query_span);
  stage.tag("storage_node", static_cast<std::uint64_t>(node));
  Partitioner left_part(sh, true, static_cast<std::uint32_t>(node),
                        *sh.left_schema, stage.id(), dead);
  Partitioner right_part(sh, false, static_cast<std::uint32_t>(node),
                         *sh.right_schema, stage.id(), dead);

  auto resend_table = [](GhShared& s, std::size_t n, TableId table,
                         Partitioner& part, const std::vector<char>& prev,
                         obs::SpanId parent) -> sim::Task<> {
    for (const auto& cm : s.meta.chunks(table)) {
      if (cm.location.storage_node != n) continue;
      auto st = co_await produce_with_retry(
          s, n, cm.id, obs::TraceContext{s.trace_id, parent});
      if (!s.query.ranges.empty()) {
        const SubTable filtered =
            filter_rows(*st, st->schema(), s.query.ranges);
        co_await part.add_lost_rows(filtered, prev);
      } else {
        co_await part.add_lost_rows(*st, prev);
      }
    }
  };

  co_await resend_table(sh, node, sh.query.left_table, left_part, prev_dead,
                        stage.id());
  co_await left_part.flush_all();
  co_await resend_table(sh, node, sh.query.right_table, right_part, prev_dead,
                        stage.id());
  co_await right_part.flush_all();
  if (auto* agg = net::context()) {
    // Same invariant as gh_storage: the coordinator joins this sender and
    // then closes the round's channels, so drain before returning.
    co_await agg->drain(node);
  }
}

/// Closes compute channels once every storage sender finishes; with a
/// fault injector installed it then runs the quiesce protocol: wait for
/// every receiver to drain the round, take the compute dead-set at quiesce
/// time, and either declare the partition stable or open another round of
/// channels and launch the re-partition senders. The dead set only grows,
/// so the loop terminates; losing every compute node fails the query with
/// a clean FaultError instead of hanging.
sim::Task<> gh_coordinator(GhShared& sh, sim::Latch& storage_done) {
  auto& engine = sh.cluster.engine();
  auto* inj = fault::context();
  co_await storage_done.wait();
  for (auto& ch : sh.to_compute) ch->close();
  if (!inj) co_return;  // fault-free: exactly the old channel closer

  const std::size_t n_compute = sh.cluster.num_compute();
  std::vector<char> prev_dead(n_compute, 0);
  while (true) {
    co_await sh.drain_latch->wait();
    // Every receiver is now parked on the round gate (count_down and the
    // gate wait happen with no intervening suspension), so the shared
    // round state below can be swapped without racing a drain.
    std::vector<char> dead(n_compute, 0);
    std::size_t n_dead = 0;
    for (std::size_t j = 0; j < n_compute; ++j) {
      if (inj->compute_crashed_by(j, engine.now())) {
        dead[j] = 1;
        ++n_dead;
        inj->note_crash_observed(fault::NodeKind::Compute, j);
      }
    }
    auto old_gate = std::move(sh.round_gate);
    if (dead == prev_dead) {
      // No deaths this round: every surviving row rests at its chain
      // destination under `dead`. Partition is stable.
      sh.final_dead = dead;
      sh.compute_nodes_lost = n_dead;
      sh.partition_complete = true;
      old_gate->set();
      co_return;
    }
    if (n_dead == n_compute) {
      sh.final_dead = dead;
      sh.compute_nodes_lost = n_dead;
      sh.partition_complete = true;  // release receivers before failing
      old_gate->set();
      throw fault::FaultError(
          "grace hash: every compute node crashed; query cannot complete");
    }
    // Open the next round, then release the receivers into it.
    for (std::size_t j = 0; j < n_compute; ++j) {
      sh.to_compute[j] = std::make_unique<sim::Channel<Batch>>(
          engine, sh.options.channel_capacity);
    }
    sh.drain_latch = std::make_unique<sim::Latch>(engine, n_compute);
    sh.round_gate = std::make_unique<sim::Event>(engine);
    sh.retired_gates.push_back(std::move(old_gate));
    sh.retired_gates.back()->set();

    std::vector<sim::JoinHandle> senders;
    for (std::size_t i = 0; i < sh.cluster.num_storage(); ++i) {
      senders.push_back(
          engine.spawn(gh_repartition(sh, i, prev_dead, dead),
                       strformat("gh-repartition-%zu", i)));
    }
    for (auto& h : senders) co_await h.join();
    for (auto& ch : sh.to_compute) ch->close();
    prev_dead = std::move(dead);
  }
}

/// Compute-node QES: receive + h2-split into scratch buckets, barrier-free
/// within the node (its channel drains), then join bucket pairs.
sim::Task<> gh_compute(GhShared& sh, std::size_t node) {
  // The query is over when the last compute node finishes (or unwinds);
  // recording that instant on every exit path is what lets the sampler's
  // done flag flip and the trailing tick stay out of the measured time.
  struct Finished {
    GhShared& sh;
    ~Finished() {
      if (--sh.computes_left == 0) {
        sh.done = true;
        sh.finished_at = sh.cluster.engine().now();
      }
    }
  } finished{sh};
  // Busy-window accounting for the skew diagnosis. Recorded at the normal
  // exit points only (not the guard above): on a failed query suspended
  // frames are destroyed after GhShared is gone, so the destructor must
  // not chase pointers into it.
  const double node_start = sh.cluster.engine().now();
  auto book_busy = [&] {
    auto& nw = sh.node_work[node];
    nw.node = node;
    nw.busy_seconds += sh.cluster.engine().now() - node_start;
  };
  const auto& hw = sh.cluster.spec().hw;
  const double factor = sh.options.cpu_work_factor;
  auto& cpu = sh.cluster.compute_cpu(node);
  auto& scratch = sh.cluster.compute_disk(node);

  const JoinKey left_key =
      JoinKey::resolve(*sh.left_schema, sh.query.join_attrs);
  const JoinKey right_key =
      JoinKey::resolve(*sh.right_schema, sh.query.join_attrs);
  const std::size_t lrs = sh.left_schema->record_size();
  const std::size_t rrs = sh.right_schema->record_size();

  // Scratch-disk buckets. Byte movement is real; the "file" contents stay
  // in memory while the simulated spindle is charged for write and
  // read-back.
  std::vector<std::vector<std::byte>> left_buckets(sh.n_buckets);
  std::vector<std::vector<std::byte>> right_buckets(sh.n_buckets);

  // --- Phase 1: receive, split by h2, spill to scratch. With a fault
  // injector installed this loops over quiesce rounds; a receiver whose
  // crash time has passed discards its entire partition state but keeps
  // draining (black hole) so senders never block on a dead destination.
  auto* ctx = obs::context();
  auto* inj = fault::context();
  obs::StageScope recv_stage(ctx, "gh.receive", sh.query_span);
  recv_stage.tag("node", static_cast<std::uint64_t>(node));
  ProbeGuard node_probes(sh.probes);
  if (sh.sampling) {
    // Channel depth is read through the persistent unique_ptr slot, which
    // stays valid across recovery-round channel swaps.
    node_probes.add(strformat("gh.channel_depth[%zu]", node),
                    [&sh, node] { return static_cast<double>(
                        sh.to_compute[node]->size()); });
    node_probes.add(strformat("gh.bucket_bytes[%zu]", node),
                    [&left_buckets, &right_buckets] {
                      double total = 0;
                      for (const auto& b : left_buckets) total += b.size();
                      for (const auto& b : right_buckets) total += b.size();
                      return total;
                    });
  }
  // Hot-loop counters resolved once; the registry reference stays valid
  // for the context's lifetime.
  obs::Counter* batch_counter =
      ctx ? &ctx->registry.counter("gh.batches") : nullptr;
  obs::Counter* batch_bytes_counter =
      ctx ? &ctx->registry.counter("gh.batch_bytes") : nullptr;
  obs::Counter* spill_counter =
      ctx ? &ctx->registry.counter("gh.bucket_spill_bytes") : nullptr;
  bool i_am_dead = false;
  auto check_death = [&] {
    if (!i_am_dead && inj && inj->compute_down(node)) {
      i_am_dead = true;
      inj->note_crash_observed(fault::NodeKind::Compute, node);
      // The receive span keeps draining (black hole) so it still closes at
      // scope exit; the tag marks it as abandoned work for trace assembly.
      if (ctx) ctx->tracer.tag(recv_stage.id(), "orphaned", std::uint64_t{1});
      for (auto& b : left_buckets) {
        b.clear();
        b.shrink_to_fit();
      }
      for (auto& b : right_buckets) {
        b.clear();
        b.shrink_to_fit();
      }
    }
  };
  // Completion time of the last double-buffered spill reservation; the
  // node awaits it before the round/phase boundary so "partition done"
  // still means "every bucket byte is on scratch disk".
  sim::Time spill_done = sh.cluster.engine().now();
  while (true) {
    while (true) {
      auto item = co_await sh.to_compute[node]->recv();
      if (!item) break;
      Batch batch = std::move(*item);
      check_death();
      if (i_am_dead) continue;  // discard; the coordinator re-sends
      if (batch_counter) {
        batch_counter->add(1);
        batch_bytes_counter->add(batch.bytes.size());
      }
      sh.node_work[node].items += batch.rows;
      sh.node_work[node].bytes += static_cast<double>(batch.bytes.size());
      // Per-batch ingest span, causally linked to the sender's gh.send
      // span: the link is the cross-node edge that stitches the h1
      // transfer into one DAG (and lets critical-path analysis hop from a
      // waiting receiver into the sender's time).
      obs::StageScope ingest_stage(ctx, "gh.ingest", recv_stage.id());
      if (ctx && batch.trace.parent) {
        ctx->tracer.link(ingest_stage.id(), batch.trace.parent);
      }
      if (sh.options.gh_double_buffer) {
        // Double-buffered spill: charge ingress, wait for the *previous*
        // batch's spill to drain, then reserve (not await) this one — the
        // scratch write proceeds while the next batch is received, so the
        // phase pays max(Transfer, Write) instead of the sum. One
        // outstanding write bounds the in-flight buffer to a batch.
        co_await sh.cluster.compute_ingress(
            node, static_cast<double>(batch.bytes.size()));
        obs::StageScope spill_stage(ctx, "gh.spill", ingest_stage.id());
        co_await sh.cluster.engine().wait_until(spill_done);
        spill_done =
            scratch.reserve_write(static_cast<double>(batch.bytes.size()),
                                  static_cast<std::uint32_t>(node));
      } else {
        // Ingress then bucket write, serialized per batch: the additive
        // Transfer + Write behaviour the paper's implementation exhibits.
        co_await sh.cluster.compute_ingress(
            node, static_cast<double>(batch.bytes.size()));
        obs::StageScope spill_stage(ctx, "gh.spill", ingest_stage.id());
        co_await scratch.write(static_cast<double>(batch.bytes.size()),
                               static_cast<std::uint32_t>(node));
      }
      if (spill_counter) spill_counter->add(batch.bytes.size());

      const JoinKey& key = batch.left ? left_key : right_key;
      const std::size_t rs = batch.left ? lrs : rrs;
      auto& buckets = batch.left ? left_buckets : right_buckets;
      for (std::uint32_t r = 0; r < batch.rows; ++r) {
        const std::byte* row = batch.bytes.data() + r * rs;
        const std::size_t b = key.hash_row(row, kSaltGraceH2) % sh.n_buckets;
        buckets[b].insert(buckets[b].end(), row, row + rs);
      }
    }
    co_await sh.cluster.engine().wait_until(spill_done);  // drain the buffer
    if (!inj) break;  // fault-free: one round, no barrier
    check_death();
    // count_down and the gate wait run with no suspension in between, so
    // by the time the coordinator wakes every receiver is parked on the
    // (old) gate and the round state can be swapped safely.
    sh.drain_latch->count_down();
    co_await sh.round_gate->wait();
    if (sh.partition_complete) break;
  }
  if (sh.cluster.engine().now() > sh.partition_phase_end) {
    sh.partition_phase_end = sh.cluster.engine().now();
  }
  recv_stage.close();
  if (inj && !sh.final_dead.empty() && sh.final_dead[node]) {
    // Fail-stop: a dead node joins no buckets; every row routed to it has
    // been re-sent to a survivor.
    book_busy();
    co_return;
  }

  // --- Phase 2: join bucket pairs independently (no network). ---
  obs::StageScope join_stage(ctx, "gh.bucket_join", sh.query_span);
  join_stage.tag("node", static_cast<std::uint64_t>(node));
  join_stage.tag("buckets", static_cast<std::uint64_t>(sh.n_buckets));
  ChunkId out_seq = 0;
  // Double-buffered read-back: the next non-empty bucket's scratch read is
  // reserved while the CPU joins the current one, so the phase pays
  // max(Read, Cpu) + one read's fill instead of their sum per bucket.
  std::vector<std::size_t> todo;
  for (std::size_t b = 0; b < sh.n_buckets; ++b) {
    if (!left_buckets[b].empty() || !right_buckets[b].empty()) {
      todo.push_back(b);
    }
  }
  auto bucket_size = [&](std::size_t b) {
    return static_cast<double>(left_buckets[b].size() +
                               right_buckets[b].size());
  };
  sim::Time next_read_done = sh.cluster.engine().now();
  if (sh.options.gh_double_buffer && !todo.empty()) {
    next_read_done =
        scratch.reserve_read(bucket_size(todo[0]),
                             static_cast<std::uint32_t>(node));
  }
  for (std::size_t t = 0; t < todo.size(); ++t) {
    const std::size_t b = todo[t];
    const double bucket_bytes = bucket_size(b);
    if (ctx) {
      ctx->registry.counter("gh.bucket_readback_bytes")
          .add(static_cast<std::uint64_t>(bucket_bytes));
    }
    {
      obs::StageScope read_stage(ctx, "gh.bucket_read", join_stage.id());
      read_stage.tag("bucket", static_cast<std::uint64_t>(b));
      if (sh.options.gh_double_buffer) {
        const sim::Time ready = next_read_done;
        if (t + 1 < todo.size()) {
          next_read_done = scratch.reserve_read(
              bucket_size(todo[t + 1]), static_cast<std::uint32_t>(node));
        }
        co_await sh.cluster.engine().wait_until(ready);
      } else {
        co_await scratch.read(bucket_bytes,
                              static_cast<std::uint32_t>(node));
      }
    }

    SubTable left(sh.left_schema, SubTableId{sh.query.left_table, 0});
    left.adopt_bytes(std::move(left_buckets[b]));
    SubTable right(sh.right_schema, SubTableId{sh.query.right_table, 0});
    right.adopt_bytes(std::move(right_buckets[b]));

    {
      obs::StageScope cpu_stage(ctx, "gh.join", join_stage.id());
      cpu_stage.tag("bucket", static_cast<std::uint64_t>(b));
      co_await cpu.use(factor * (hw.gamma_build *
                                     static_cast<double>(left.num_rows()) +
                                 hw.gamma_lookup *
                                     static_cast<double>(right.num_rows())));
    }

    SubTable out(sh.result_schema, SubTableId{0, out_seq++});
    auto left_alias = std::shared_ptr<const SubTable>(&left, [](auto*) {});
    const BuiltHashTable ht(left_alias, sh.query.join_attrs);
    const JoinStats s = ht.probe(right, sh.query.join_attrs, out);
    sh.stats.build_tuples += left.num_rows();
    sh.stats.probe_tuples += s.probe_tuples;
    sh.stats.result_tuples += s.result_tuples;
    sh.result_tuples += s.result_tuples;
    sh.fingerprint += out.unordered_fingerprint();
    if (sh.options.result_sink) sh.options.result_sink(node, out);
  }
  book_busy();
}

double scratch_bytes_written(Cluster& cluster) {
  if (cluster.spec().shared_filesystem) {
    return cluster.compute_disk(0).bytes_written();
  }
  double total = 0;
  for (std::size_t j = 0; j < cluster.num_compute(); ++j) {
    total += cluster.compute_disk(j).bytes_written();
  }
  return total;
}

double scratch_bytes_read_total(Cluster& cluster) {
  if (cluster.spec().shared_filesystem) {
    return cluster.compute_disk(0).bytes_read();
  }
  double total = 0;
  for (std::size_t j = 0; j < cluster.num_compute(); ++j) {
    total += cluster.compute_disk(j).bytes_read();
  }
  return total;
}

double storage_read_total(Cluster& cluster) {
  if (cluster.spec().shared_filesystem) {
    return cluster.storage_disk(0).bytes_read();
  }
  double total = 0;
  for (std::size_t i = 0; i < cluster.num_storage(); ++i) {
    total += cluster.storage_disk(i).bytes_read();
  }
  return total;
}

}  // namespace

sim::Task<QesResult> grace_hash_task(Cluster& cluster, BdsService& bds,
                                     const MetaDataService& meta,
                                     const JoinQuery& query,
                                     const QesOptions& options) {
  ORV_REQUIRE(!query.join_attrs.empty(), "join needs key attributes");
  auto& engine = cluster.engine();

  const auto left_schema = meta.table_schema(query.left_table);
  const auto right_schema = meta.table_schema(query.right_table);
  const JoinKey right_key = JoinKey::resolve(*right_schema, query.join_attrs);

  GhShared sh{cluster,
              bds,
              meta,
              query,
              options,
              left_schema,
              right_schema,
              std::make_shared<const Schema>(Schema::join_result(
                  *left_schema, *right_schema, right_key.attr_indices()))};

  // Bucket count: every bucket pair must fit in memory (Section 4.2).
  const double total_bytes =
      static_cast<double>(meta.table_bytes(query.left_table) +
                          meta.table_bytes(query.right_table));
  const double per_node = total_bytes / static_cast<double>(cluster.num_compute());
  const double target = options.bucket_pair_bytes
                            ? static_cast<double>(options.bucket_pair_bytes)
                            : static_cast<double>(cluster.memory_bytes()) / 2;
  sh.n_buckets = static_cast<std::size_t>(per_node / target) + 1;

  for (std::size_t j = 0; j < cluster.num_compute(); ++j) {
    sh.to_compute.push_back(std::make_unique<sim::Channel<Batch>>(
        engine, options.channel_capacity));
  }
  sh.drain_latch =
      std::make_unique<sim::Latch>(engine, cluster.num_compute());
  sh.round_gate = std::make_unique<sim::Event>(engine);
  sh.computes_left = cluster.num_compute();
  sh.node_work.resize(cluster.num_compute());

  auto* octx = obs::context();
  if (octx) {
    sh.trace_id = octx->next_trace_id();
    sh.query_span = octx->tracer.begin("gh.query");
    octx->tracer.tag(sh.query_span, "trace_id", sh.trace_id);
    octx->tracer.tag(sh.query_span, "algorithm", std::string("grace_hash"));
    sh.sampling = octx->sample_interval > 0;
  }

  const double net0 = cluster.network_bytes();
  const double switch0 = cluster.switch_bytes();
  const std::uint64_t frames0 = cluster.network_switch().num_ops();
  const double sread0 = storage_read_total(cluster);
  const double cw0 = scratch_bytes_written(cluster);
  const double cr0 = scratch_bytes_read_total(cluster);

  const double start = engine.now();
  sim::Latch storage_done(engine, cluster.num_storage());
  std::vector<sim::JoinHandle> handles;
  for (std::size_t i = 0; i < cluster.num_storage(); ++i) {
    handles.push_back(engine.spawn(gh_storage(sh, i, storage_done),
                                   strformat("gh-storage-%zu", i)));
  }
  handles.push_back(
      engine.spawn(gh_coordinator(sh, storage_done), "gh-coordinator"));
  for (std::size_t j = 0; j < cluster.num_compute(); ++j) {
    handles.push_back(
        engine.spawn(gh_compute(sh, j), strformat("gh-compute-%zu", j)));
  }
  sim::JoinHandle sampler;
  if (sh.sampling) {
    sampler = engine.spawn(occupancy_sampler(cluster, octx, sh.probes,
                                             &sh.done),
                           "gh-sampler");
  }
  // Join every process, observing all exceptions but surfacing the first
  // (in spawn order — the same one Engine::run would rethrow after a
  // single-query drain).
  std::exception_ptr first_error;
  for (const auto& h : handles) {
    try {
      co_await h.join();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) {
    // The query died (e.g. every compute node crashed): close the root
    // span so a failed query never leaves dangling spans behind.
    if (octx) octx->tracer.end_orphaned(sh.query_span);
    std::rethrow_exception(first_error);
  }
  for (const auto& h : handles) {
    ORV_CHECK(h.done(), "GH process did not finish");
  }

  QesResult result;
  // With the sampler on, the engine runs one trailing tick past query
  // completion; the last compute node's finish time is the real elapsed.
  result.elapsed =
      (sh.sampling && sh.finished_at >= 0 ? sh.finished_at : engine.now()) -
      start;
  result.partition_phase = sh.partition_phase_end - start;
  result.join_phase = result.elapsed - result.partition_phase;
  result.result_tuples = sh.result_tuples;
  result.result_fingerprint = sh.fingerprint;
  result.join_stats = sh.stats;
  result.network_bytes = cluster.network_bytes() - net0;
  // GH shuffles every record through the switch regardless of placement
  // (its egress path never uses the local bus), so local bytes stay 0.
  result.cross_switch_bytes = cluster.switch_bytes() - switch0;
  result.storage_disk_read_bytes = storage_read_total(cluster) - sread0;
  result.scratch_write_bytes = scratch_bytes_written(cluster) - cw0;
  result.scratch_read_bytes = scratch_bytes_read_total(cluster) - cr0;
  result.h1_messages_sent = sh.h1_messages_sent;
  result.net_frames_sent = cluster.network_switch().num_ops() - frames0;
  result.fetch_retries = sh.fetch_retries;
  result.rows_repartitioned = sh.rows_repartitioned;
  result.compute_nodes_lost = sh.compute_nodes_lost;
  result.node_work = std::move(sh.node_work);
  result.degraded = sh.fetch_retries > 0 || sh.rows_repartitioned > 0 ||
                    sh.compute_nodes_lost > 0;
  if (result.degraded) {
    if (auto* ctx = obs::context()) {
      ctx->registry.counter("query.degraded").add(1);
    }
  }
  if (auto* ctx = obs::context()) {
    ctx->registry.counter("gh.result_tuples").add(sh.result_tuples);
    ctx->registry.gauge("gh.n_buckets")
        .set(static_cast<double>(sh.n_buckets));
    ctx->registry.gauge("gh.partition_phase_seconds")
        .set(result.partition_phase);
    ctx->registry.gauge("gh.join_phase_seconds").set(result.join_phase);
    ctx->registry.gauge("gh.elapsed_seconds").set(result.elapsed);
  }
  if (octx) octx->tracer.end_at(sh.query_span, start + result.elapsed);
  co_return result;
}

QesResult run_grace_hash(Cluster& cluster, BdsService& bds,
                         const MetaDataService& meta, const JoinQuery& query,
                         const QesOptions& options) {
  return qes_detail::run_query_task(
      cluster.engine(), grace_hash_task(cluster, bds, meta, query, options),
      "gh-query");
}

}  // namespace orv
