#include "qes/session.hpp"

#include "common/strings.hpp"

namespace orv {

QesSession::QesSession(Cluster& cluster, BdsService& bds,
                       const MetaDataService& meta, Config config)
    : cluster_(cluster),
      bds_(bds),
      meta_(meta),
      config_(config),
      planner_(cluster.spec()) {
  if (config_.share_cache) {
    const std::uint64_t cap = config_.cache_bytes > 0
                                  ? config_.cache_bytes
                                  : cluster_.memory_bytes();
    caches_.reserve(cluster_.num_compute());
    for (std::size_t j = 0; j < cluster_.num_compute(); ++j) {
      caches_.push_back(
          std::make_shared<CachingService>(cap, config_.cache_policy));
    }
  }
}

const ConnectivityGraph& QesSession::graph_for(const JoinQuery& query) {
  std::string key = strformat("%u|%u", query.left_table, query.right_table);
  for (const auto& a : query.join_attrs) {
    key += "|";
    key += a;
  }
  for (const auto& r : query.ranges) {
    key += strformat("|%s:%.17g:%.17g", r.attr.c_str(), r.range.lo,
                     r.range.hi);
  }
  auto it = graphs_.find(key);
  if (it == graphs_.end()) {
    it = graphs_
             .emplace(std::move(key),
                      std::make_unique<ConnectivityGraph>(
                          ConnectivityGraph::build(meta_, query.left_table,
                                                   query.right_table,
                                                   query.join_attrs,
                                                   query.ranges)))
             .first;
  }
  return *it->second;
}

CachingService::Stats QesSession::cache_totals() const {
  CachingService::Stats total;
  for (const auto& c : caches_) {
    const auto s = c->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.bytes_evicted += s.bytes_evicted;
    total.puts += s.puts;
    total.invalidations += s.invalidations;
  }
  return total;
}

sim::Task<> QesSession::run_query(JoinQuery query, QesOptions options,
                                  Outcome* out,
                                  std::optional<Algorithm> force) {
  try {
    if (!caches_.empty()) options.node_caches = &caches_;
    const ConnectivityGraph& graph = graph_for(query);
    // cpu_work_factor repeats hash charges k times; the planner's
    // cpu_factor scales CPU *speed*, so the two are reciprocal.
    const double cpu_factor =
        options.cpu_work_factor > 0 ? 1.0 / options.cpu_work_factor : 1.0;
    out->plan = planner_.plan(meta_, graph, query, cpu_factor, &options);
    out->algorithm = force.value_or(out->plan.chosen);
    if (out->algorithm == Algorithm::IndexedJoin) {
      out->result = co_await indexed_join_task(cluster_, bds_, meta_, graph,
                                               query, options);
    } else {
      out->result = co_await grace_hash_task(cluster_, bds_, meta_, query,
                                             options);
    }
  } catch (const std::exception& e) {
    out->failed = true;
    out->error = e.what();
  }
  out->done = true;
}

}  // namespace orv
