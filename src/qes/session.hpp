#pragma once

// Multi-query QES session: runs many queries *concurrently* over one
// shared simulated cluster within a single Engine::run. Each query is one
// spawned coroutine (indexed_join_task / grace_hash_task); they contend
// for the same storage disks, NICs, switch and compute CPUs, and — when
// sharing is on — reuse one persistent Caching Service per compute node,
// so overlapping queries finally produce real cross-query hit rates.
//
// Per-query state stays isolated: every query gets its own QesResult,
// its own trace id (obs::ObsContext::next_trace_id), and its own Outcome
// record. A query that faults is caught here — the exception is observed,
// the failure lands in its Outcome, and every other in-flight query keeps
// running.

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "qes/qes.hpp"
#include "qps/planner.hpp"

namespace orv {

struct SessionConfig {
  /// One persistent CachingService per compute node, shared by every
  /// query in the session (sub-tables cached raw; see
  /// QesOptions::node_caches). Off = per-query private caches, the
  /// single-query behaviour.
  bool share_cache = true;
  std::uint64_t cache_bytes = 0;  // per node; 0 = cluster memory size
  CachePolicy cache_policy = CachePolicy::LRU;
};

class QesSession {
 public:
  using Config = SessionConfig;

  /// What happened to one submitted query. `done` flips exactly once, when
  /// the query's coroutine finishes (successfully or not).
  struct Outcome {
    bool done = false;
    bool failed = false;
    std::string error;
    Algorithm algorithm = Algorithm::IndexedJoin;
    PlanDecision plan;
    QesResult result;
  };

  QesSession(Cluster& cluster, BdsService& bds, const MetaDataService& meta,
             Config config = {});

  /// One query, start to finish, as a spawnable coroutine: plan (QPS cost
  /// models, honouring options.contention when set), execute the chosen
  /// algorithm on the shared cluster, deposit into `*out`. `force` pins
  /// the algorithm (the plan is still recorded for its cost estimate).
  /// Exceptions are captured into the outcome, never propagated — so a
  /// faulted query cannot take down the engine run or its neighbours.
  /// `out` must outlive the task.
  sim::Task<> run_query(JoinQuery query, QesOptions options, Outcome* out,
                        std::optional<Algorithm> force = {});

  /// Connectivity graph for the query, memoized on (tables, attrs,
  /// ranges) so repeated specs in a workload mix build it once.
  const ConnectivityGraph& graph_for(const JoinQuery& query);

  Cluster& cluster() { return cluster_; }
  const QueryPlanner& planner() const { return planner_; }

  /// The session's shared per-node caches (empty when share_cache is off).
  const std::vector<std::shared_ptr<CachingService>>& node_caches() const {
    return caches_;
  }
  /// Aggregated stats over the shared caches (all zero when sharing is
  /// off). hits + misses always equals the number of lookups.
  CachingService::Stats cache_totals() const;

 private:
  Cluster& cluster_;
  BdsService& bds_;
  const MetaDataService& meta_;
  Config config_;
  QueryPlanner planner_;
  std::vector<std::shared_ptr<CachingService>> caches_;
  std::map<std::string, std::unique_ptr<ConnectivityGraph>> graphs_;
};

}  // namespace orv
