#pragma once

// Sim-time occupancy sampler (tentpole part 3): a coroutine that wakes at
// fixed virtual intervals and records resource occupancy — storage disk,
// NIC and switch busy-time deltas — plus whatever gauge probes the running
// join registered (cache bytes, pin counts, prefetch-channel depth) into
// the ObsContext's time series. The joins only spawn it when an ObsContext
// with a positive sample_interval is installed, so default runs schedule
// no extra events and stay event-for-event identical.

#include <array>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace orv {

/// Gauge probes registered by a join while their referents are alive.
struct ProbeSet {
  std::vector<std::pair<std::string, std::function<double()>>> entries;
};

/// RAII registration: probes added through a guard are removed when the
/// guard leaves scope, before the cache / channel they read is destroyed.
class ProbeGuard {
 public:
  explicit ProbeGuard(ProbeSet& set) : set_(set) {}
  ProbeGuard(const ProbeGuard&) = delete;
  ProbeGuard& operator=(const ProbeGuard&) = delete;
  ~ProbeGuard() {
    for (const std::string& name : names_) {
      auto& e = set_.entries;
      for (std::size_t i = 0; i < e.size(); ++i) {
        if (e[i].first == name) {
          e.erase(e.begin() + i);
          break;
        }
      }
    }
  }

  void add(std::string name, std::function<double()> probe) {
    names_.push_back(name);
    set_.entries.emplace_back(std::move(name), std::move(probe));
  }

 private:
  ProbeSet& set_;
  std::vector<std::string> names_;
};

/// Samples until `*done` (set by the query's supervisor on every exit
/// path — a sampler that outlives its done flag would keep the engine
/// alive forever). Occupancy is the busy-time delta over the interval;
/// Resource accrues busy time at reservation, so a burst of reservations
/// shows up as a spike in the interval it was booked in.
inline sim::Task<> occupancy_sampler(Cluster& cluster, obs::ObsContext* ctx,
                                     const ProbeSet& probes,
                                     const bool* done) {
  auto& engine = cluster.engine();
  const double dt = ctx->sample_interval;
  const std::size_t n_disks =
      cluster.spec().shared_filesystem ? 1 : cluster.num_storage();
  auto totals = [&] {
    std::array<double, 4> t{};
    for (std::size_t i = 0; i < n_disks; ++i) {
      t[0] += cluster.storage_disk(i).busy_time();
    }
    for (std::size_t i = 0; i < cluster.num_storage(); ++i) {
      if (auto* r = cluster.storage_nic(i)) t[1] += r->busy_time();
    }
    for (std::size_t j = 0; j < cluster.num_compute(); ++j) {
      if (auto* r = cluster.compute_nic(j)) t[2] += r->busy_time();
    }
    t[3] = cluster.network_switch().busy_time();
    return t;
  };
  static constexpr const char* kNames[4] = {
      "occupancy.storage_disk", "occupancy.storage_nic",
      "occupancy.compute_nic", "occupancy.switch"};
  std::array<double, 4> prev = totals();
  while (!*done) {
    co_await engine.sleep(dt);
    const double now = engine.now();
    const std::array<double, 4> cur = totals();
    for (std::size_t k = 0; k < cur.size(); ++k) {
      ctx->add_sample(kNames[k], now, (cur[k] - prev[k]) / dt);
    }
    prev = cur;
    for (const auto& [name, probe] : probes.entries) {
      ctx->add_sample(name, now, probe());
    }
  }
}

}  // namespace orv
