#pragma once

// Query Execution Services: the distributed join algorithms (paper
// Sections 4.1, 4.2).
//
// Both algorithms *really execute* — chunk bytes are read, records move,
// hash tables are built and probed, and the joined rows are materialized
// and digested — while every disk, network and CPU operation is awaited on
// the simulated cluster's resources. The returned virtual elapsed time is
// what the paper's figures plot; the result digest lets tests prove both
// algorithms (and the reference join) produce identical row multisets.
//
// Cost-model correspondence (Section 5):
//  - Indexed Join compute nodes fetch-then-join sequentially, so per-node
//    time decomposes into Transfer + Cpu as the model assumes.
//  - Grace Hash receivers charge network + bucket write per batch
//    sequentially (their implementation's behaviour, which is what makes
//    the model's Transfer + Write additive), then a barrier, then the
//    bucket-join phase charges Read + Cpu.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bds/bds.hpp"
#include "cache/caching_service.hpp"
#include "cluster/cluster.hpp"
#include "graph/connectivity.hpp"
#include "join/hash_join.hpp"
#include "meta/metadata.hpp"
#include "sched/schedule.hpp"

namespace orv::obs {
class Calibrator;
}  // namespace orv::obs

namespace orv {

struct ContentionFactors;  // cost/cost_model.hpp

/// An equi-join view query: V = left ⊕_attrs right [WHERE ranges].
struct JoinQuery {
  TableId left_table = 0;
  TableId right_table = 0;
  std::vector<std::string> join_attrs;
  std::vector<AttrRange> ranges;  // optional selection, pushed down
};

struct QesOptions {
  /// Fig. 8: work factor k repeats the hash build/probe charges k times
  /// (k = 2 models half the computing power).
  double cpu_work_factor = 1.0;

  /// Indexed Join knobs.
  /// Push the query's record-level selection down to the BDS instances so
  /// only surviving rows cross the network (extension; the paper filters
  /// at the compute side, which is the default).
  bool pushdown_selection = false;
  CachePolicy cache_policy = CachePolicy::LRU;
  ComponentAssign assign = ComponentAssign::RoundRobin;
  PairOrder pair_order = PairOrder::Lexicographic;
  /// Cache capacity per compute node; 0 means the cluster's memory size.
  std::uint64_t cache_bytes = 0;

  /// Pipelined Indexed Join: each compute node runs a prefetcher coroutine
  /// that walks the scheduled pair list up to this many pairs ahead of the
  /// join loop, issuing BDS fetches and *pinning* the results in the
  /// Caching Service so eviction cannot undo a prefetch before use. The
  /// join loop consumes ready pairs from a bounded channel, so Transfer
  /// overlaps Build/Probe and per-node time approaches max(Transfer, Cpu)
  /// instead of their sum. 0 (default) keeps the serial fetch-then-join
  /// path and the additive cost model.
  std::size_t prefetch_lookahead = 0;

  /// Pipelined fault-free prefetch fetches batch adjacent upcoming chunk
  /// reads of the same storage node into a single multi-chunk disk
  /// reservation (one seek per run instead of per chunk). Ignored when a
  /// fault injector is installed: per-id fetches keep retry/backoff simple.
  bool coalesce_fetches = true;

  /// Persistent per-compute-node Caching Service instances, reused across
  /// queries (the paper's future-work "caching strategies"). Must hold one
  /// cache per compute node. In this mode sub-tables are cached *raw* and
  /// the query's selection is applied to join outputs instead, so cached
  /// entries stay valid for later queries with different predicates.
  std::vector<std::shared_ptr<CachingService>>* node_caches = nullptr;

  /// Grace Hash knobs.
  std::size_t batch_bytes = 64 * 1024;  // record batch shipped per message
  /// Target in-memory size of one bucket pair; 0 derives it from the
  /// cluster's memory size (buckets must fit in memory, Section 4.2).
  std::uint64_t bucket_pair_bytes = 0;
  std::size_t channel_capacity = 4;
  /// Pipelined Grace Hash: double-buffer the on-disk bucket spills (write
  /// the batch for bucket k while partitioning k+1) and issue the next
  /// bucket's scratch read while the CPU joins the current one, so each
  /// phase pays max(Transfer, Write) / max(Read, Cpu) instead of the sum.
  bool gh_double_buffer = false;

  /// Pricing-side flush threshold of the network message aggregator:
  /// logical messages combined per physical frame. 0 (default) prices the
  /// unaggregated network. This knob only feeds the cost model — the
  /// executor is driven by the *installed* net::MessageAggregator, and the
  /// planner/benches keep the two in sync.
  std::size_t agg_flush_batches = 0;

  /// True when any overlap pipeline is enabled; the QPS selects the
  /// pipelined cost models iff this holds.
  bool pipelined() const { return prefetch_lookahead > 0 || gh_double_buffer; }

  /// QPS integration: consult the online calibrator's learned hardware
  /// parameters when costing plans (the harness feeds the calibrator one
  /// observation per executed query via cost/calibration.hpp's
  /// make_observation). Default off — the paper's prior-parameter plans
  /// and every committed baseline stay byte-identical. The pointer is not
  /// owned and must outlive the planner calls that read it.
  bool use_calibration = false;
  obs::Calibrator* calibrator = nullptr;

  /// Observed resource busy fractions at plan time (concurrent workloads):
  /// when set, the planner derates the Table 1 bandwidth/CPU parameters by
  /// the residual capacity (cost/cost_model.hpp's apply_contention) so plan
  /// choice shifts under load. Default null — single-query plans and every
  /// committed baseline are untouched. Not owned; must outlive the plan
  /// call.
  const ContentionFactors* contention = nullptr;

  /// Workload-driver integration: let the live monitor's per-node health
  /// scores derate the admission controller's effective concurrency (sick
  /// nodes shrink capacity instead of collecting queries that will
  /// straggle). Default off — admission behaviour and every committed
  /// baseline are byte-identical. Read by workload::run_workload, which
  /// owns the NodeHealthTracker the controller consults.
  bool health_aware_admission = false;

  std::uint64_t seed = 0;  // for randomized ablation strategies

  /// Optional per-result-fragment hook, invoked at the producing compute
  /// node with each pair/bucket join output (before it is discarded). The
  /// distributed DDS layer uses it for node-side aggregation and for
  /// materializing query results.
  std::function<void(std::size_t node, const SubTable& fragment)> result_sink;
};

/// Execution outcome plus enough accounting to validate the cost models.
struct QesResult {
  double elapsed = 0;  // virtual seconds (what the paper's figures plot)

  std::uint64_t result_tuples = 0;
  std::uint64_t result_fingerprint = 0;  // order-independent digest

  JoinStats join_stats;

  // Phase decomposition (virtual seconds).
  double partition_phase = 0;  // GH: transfer + bucket write
  double join_phase = 0;       // GH: bucket read + build/probe

  // Resource totals across the run.
  double network_bytes = 0;
  double storage_disk_read_bytes = 0;
  double scratch_write_bytes = 0;
  double scratch_read_bytes = 0;
  /// Locality split of the transfer traffic (colocated clusters): bytes
  /// that crossed the switch vs bytes served over a node-local bus. On a
  /// non-colocated cluster local_transfer_bytes is 0.
  double cross_switch_bytes = 0;
  double local_transfer_bytes = 0;

  /// Per-compute-node work accounting, the diagnosis engine's skew feed:
  /// how long each node was busy with the query, how many work items it
  /// processed (IJ: pairs joined; GH: rows received), and how many bytes
  /// it pulled (IJ: sub-table fetches; GH: h1 batch ingress).
  struct NodeWork {
    std::size_t node = 0;
    double busy_seconds = 0;
    std::uint64_t items = 0;
    double bytes = 0;
  };
  std::vector<NodeWork> node_work;

  // IJ cache behaviour, aggregated over compute nodes.
  CachingService::Stats cache_stats;
  std::uint64_t subtable_fetches = 0;
  std::uint64_t hash_tables_built = 0;

  // Pipelining accounting (zero on serial runs).
  std::uint64_t prefetch_issued = 0;  // sub-table fetches issued ahead
  std::uint64_t prefetch_wasted = 0;  // prefetched pins released unconsumed
  /// Fraction of prefetch Transfer time hidden behind compute: 1 means the
  /// join loop never waited on a fetch, 0 means no overlap (serial).
  double overlap_ratio = 0;

  // Network message accounting (GH fills these; zero elsewhere). Logical
  // h1 batch messages are what the cost model counts; physical frames are
  // switch operations, and the two differ exactly when a
  // net::MessageAggregator is installed.
  std::uint64_t h1_messages_sent = 0;
  std::uint64_t net_frames_sent = 0;

  // Fault recovery accounting (all zero on a fault-free run).
  std::uint64_t fetch_retries = 0;       // BDS fetch attempts beyond the first
  std::uint64_t pairs_reassigned = 0;    // IJ: orphaned pairs re-run elsewhere
  std::uint64_t rows_repartitioned = 0;  // GH: rows re-routed after a death
  std::uint64_t compute_nodes_lost = 0;  // fail-stop compute crashes observed
  /// The run finished correctly but leaned on recovery (retries, node
  /// deaths); mirrored to the query.degraded obs counter.
  bool degraded = false;

  std::string to_string() const;
};

/// Page-level Indexed Join (Section 4.1): schedules connectivity-graph
/// components over compute-node QES instances; sub-tables are fetched from
/// BDS instances, cached (LRU), and joined in memory.
QesResult run_indexed_join(Cluster& cluster, BdsService& bds,
                           const MetaDataService& meta,
                           const ConnectivityGraph& graph,
                           const JoinQuery& query,
                           const QesOptions& options = {});

/// Grace Hash join (Section 4.2, network-free bucket-join variant):
/// storage-node QES instances stream records through h1 to compute nodes,
/// which partition them through h2 into scratch-disk buckets, then join
/// bucket pairs independently.
QesResult run_grace_hash(Cluster& cluster, BdsService& bds,
                         const MetaDataService& meta, const JoinQuery& query,
                         const QesOptions& options = {});

/// Spawnable forms of the two algorithms: the whole query — worker spawn,
/// supervision, result assembly — runs as one coroutine on the cluster's
/// engine, so several queries can execute concurrently over the *shared*
/// simulated resources within a single Engine::run. The run_* entry
/// points above are thin wrappers (spawn one task, run the engine), and a
/// single spawned task reproduces their timings and fingerprints exactly.
/// All reference arguments must outlive the task.
sim::Task<QesResult> indexed_join_task(Cluster& cluster, BdsService& bds,
                                       const MetaDataService& meta,
                                       const ConnectivityGraph& graph,
                                       const JoinQuery& query,
                                       const QesOptions& options);
sim::Task<QesResult> grace_hash_task(Cluster& cluster, BdsService& bds,
                                     const MetaDataService& meta,
                                     const JoinQuery& query,
                                     const QesOptions& options);

namespace qes_detail {
/// Spawns one query task and drives the engine until it drains; the
/// single-query path shared by both run_* wrappers.
QesResult run_query_task(sim::Engine& engine, sim::Task<QesResult> task,
                         const char* name);
}  // namespace qes_detail

/// Reference result (no simulation): concatenates all matching sub-tables
/// and runs one in-memory hash join. Tests compare both QES against this.
struct ReferenceResult {
  std::uint64_t result_tuples = 0;
  std::uint64_t result_fingerprint = 0;
};
ReferenceResult reference_join(const MetaDataService& meta,
                               const std::vector<std::shared_ptr<ChunkStore>>&
                                   stores,
                               const JoinQuery& query);

/// Second, independent oracle: same extraction/filter path as
/// reference_join, but the join itself is a brute-force nested loop with
/// no hashing in common with the QES implementations. The differential
/// tests require IJ == GH == nested-loop on the same inputs.
ReferenceResult nested_loop_reference(
    const MetaDataService& meta,
    const std::vector<std::shared_ptr<ChunkStore>>& stores,
    const JoinQuery& query);

/// Applies the query's record-level range predicate to a sub-table,
/// returning the surviving rows (same schema/id). Used by both QES and the
/// reference.
SubTable filter_rows(const SubTable& st, const Schema& schema,
                     const std::vector<AttrRange>& ranges);

}  // namespace orv
