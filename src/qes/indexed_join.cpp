// Page-level Indexed Join QES (paper Section 4.1).
//
// Each compute node runs one QES process over its scheduled pair list:
// check the local Caching Service for each sub-table, fetch misses from the
// owning BDS instance, build (and cache) a hash table per left sub-table,
// probe with the right sub-table. By default fetch and join serialize
// within a node, matching the cost model's additive Transfer + Cpu
// decomposition.
//
// With QesOptions::prefetch_lookahead > 0 each node instead runs a
// prefetcher coroutine that walks the pair list ahead of the join loop:
// it fetches missing sub-tables from the BDS (coalescing adjacent chunk
// reads when fault-free), *pins* them in the Caching Service so eviction
// cannot undo a prefetch, and hands ready pair indices to the join loop
// through a bounded channel (capacity = lookahead). The join loop then
// overlaps Build/Probe with the prefetcher's Transfer, so per-node time
// approaches max(Transfer, Cpu) — the pipelined cost model. Pins are
// released when the consumer finishes a pair, or during the drain protocol
// when a node dies / the prefetcher fails, so fault-reassignment never
// leaks a pin into a persistent session cache.

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "qes/qes.hpp"
#include "qes/sampler.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"

namespace orv {

namespace {

/// Sum of bytes read from the distinct storage-side disks (one NFS server
/// in shared-filesystem mode, n_s spindles otherwise).
double storage_read_bytes(Cluster& cluster) {
  if (cluster.spec().shared_filesystem) {
    return cluster.storage_disk(0).bytes_read();
  }
  double total = 0;
  for (std::size_t i = 0; i < cluster.num_storage(); ++i) {
    total += cluster.storage_disk(i).bytes_read();
  }
  return total;
}

struct IjShared {
  IjShared(Cluster& c, BdsService& b, const MetaDataService& m,
           const JoinQuery& q, const QesOptions& o, SchemaPtr schema)
      : cluster(c), bds(b), meta(m), query(q), options(o),
        result_schema(std::move(schema)) {}

  Cluster& cluster;
  BdsService& bds;
  const MetaDataService& meta;
  const JoinQuery& query;
  const QesOptions& options;
  SchemaPtr result_schema;

  // Accumulators (single-threaded engine: plain writes are safe).
  std::uint64_t result_tuples = 0;
  std::uint64_t fingerprint = 0;
  JoinStats stats;
  std::uint64_t fetches = 0;
  std::uint64_t builds = 0;
  CachingService::Stats cache_total;

  // Fault recovery state (empty/zero on a fault-free run).
  std::vector<char> dead;             // compute nodes observed fail-stop
  std::vector<SubTablePair> orphans;  // pairs abandoned by dead nodes
  std::uint64_t fetch_retries = 0;
  std::uint64_t pairs_reassigned = 0;
  std::uint64_t compute_nodes_lost = 0;

  // Pipelining accounting (zero on serial runs).
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_wasted = 0;
  double fetch_busy = 0;     // virtual seconds prefetchers spent fetching
  double consumer_wait = 0;  // virtual seconds join loops starved on recv

  // Per-node "ij.node" span ids; parents for fetch/build/probe spans.
  std::vector<obs::SpanId> node_spans;

  /// Per-node work accounting (skew diagnosis): busy seconds, pairs
  /// joined, bytes fetched. Accumulates across supervisor rounds.
  std::vector<QesResult::NodeWork> node_work;

  // Trace-context plumbing: the query's trace id and root span, the
  // supervisor span node spans parent on, and the supervisor's completion
  // signal for the occupancy sampler (which must not keep the engine
  // alive, and whose trailing tick must not inflate `elapsed`).
  std::uint64_t trace_id = 0;
  obs::SpanId query_span;
  bool sampling = false;
  bool done = false;
  double finished_at = -1;
  ProbeSet probes;
};

void merge_cache_stats(CachingService::Stats& into,
                       const CachingService::Stats& from) {
  into.hits += from.hits;
  into.misses += from.misses;
  into.evictions += from.evictions;
  into.bytes_evicted += from.bytes_evicted;
  into.puts += from.puts;
  into.invalidations += from.invalidations;
}

/// One fetch from the owning BDS instance, with the query's selection
/// applied per the options (`raw` skips filtering: persistent-cache mode
/// caches raw). Retryable I/O failures (injected read errors, RPC
/// timeouts against a down storage node) back off exponentially and try
/// again; exhausting the budget invalidates any stale cache entry for the
/// id and surfaces a clean FaultError.
sim::Task<std::shared_ptr<const SubTable>> fetch_subtable(
    IjShared& sh, SubTableId id, std::size_t node, bool raw,
    CachingService& cache, obs::SpanId* fetch_span = nullptr) {
  ++sh.fetches;
  obs::StageScope stage(obs::context(), "ij.fetch", sh.node_spans[node]);
  if (fetch_span) *fetch_span = stage.id();
  auto* inj = fault::context();
  const fault::RetryPolicy policy =
      inj ? inj->plan().retry : fault::RetryPolicy{};
  const bool pushdown =
      !raw && sh.options.pushdown_selection && !sh.query.ranges.empty();
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      co_await sh.cluster.engine().sleep(policy.backoff(attempt));
    }
    try {
      std::shared_ptr<const SubTable> st;
      const obs::TraceContext rpc{sh.trace_id, stage.id()};
      if (attempt > 0) stage.tag("retry", static_cast<std::uint64_t>(attempt));
      if (pushdown) {
        // Selection pushed to the storage node: fewer bytes on the wire.
        st = co_await sh.bds.instance_for(id).fetch_to_compute(
            id, node, &sh.query.ranges, rpc);
      } else {
        st = co_await sh.bds.instance_for(id).fetch_to_compute(id, node,
                                                               nullptr, rpc);
      }
      if (!raw && !pushdown && !sh.query.ranges.empty()) {
        st = std::make_shared<const SubTable>(
            filter_rows(*st, st->schema(), sh.query.ranges));
      }
      sh.node_work[node].bytes += static_cast<double>(st->size_bytes());
      co_return st;
    } catch (const IoError& e) {
      cache.invalidate(id);  // a cached copy of a failing source is suspect
      if (!inj) throw;       // genuine device error: not ours to mask
      if (attempt + 1 >= policy.max_attempts) {
        throw fault::FaultError("fetch of " + id.to_string() +
                                " failed after " +
                                std::to_string(attempt + 1) +
                                " attempts: " + e.what());
      }
      inj->note_retry();
      ++sh.fetch_retries;
    }
  }
}

/// Shared state between one node's prefetcher and its join loop.
struct IjPrefetchState {
  IjPrefetchState(sim::Engine& engine, std::size_t lookahead)
      : ch(engine, lookahead) {}

  /// Ready pair indices, in pair-list order; the bound IS the lookahead:
  /// the prefetcher parks on send once it is `lookahead` pairs ahead.
  sim::Channel<std::size_t> ch;
  /// Set by the consumer (death, error): the prefetcher stops at the next
  /// pair boundary, releases what it still holds, and closes the channel.
  bool stop = false;
  /// Prefetcher failure, rethrown by the consumer after the drain (unless
  /// the node died first — then the pair is orphaned work, not an error).
  std::exception_ptr error;
  /// Pins taken by a coalesced batch on behalf of *future* pair
  /// occurrences: when the walk reaches such an id it spends a credit
  /// instead of pinning again. Unspent credits are released on shutdown.
  std::unordered_map<SubTableId, std::uint32_t, SubTableIdHash> credits;
  /// Span of the fetch that made pair i ready (0 = cache hit). The
  /// consumer links its ij.wait span to it, giving critical-path analysis
  /// the causal edge from a starved join loop into the prefetcher's
  /// transfer time.
  std::vector<obs::SpanId> pair_fetch_span;
  /// Batch fetch span backing each outstanding credit, so credit-spending
  /// pairs still point at the fetch that actually moved their bytes.
  std::unordered_map<SubTableId, obs::SpanId, SubTableIdHash> credit_span;
};

/// Ensures `id` (needed by pairs[pair_idx]) is resident and holds one pin
/// for this pair occurrence. On a miss, fault-free runs batch the fetch
/// with upcoming misses of the same storage node so adjacent chunk reads
/// coalesce into one disk reservation; under fault injection every id goes
/// through fetch_subtable's retry/backoff path individually.
sim::Task<> ij_prefetch_fetch(IjShared& sh, std::size_t node, bool raw,
                              CachingService& cache, IjPrefetchState& ps,
                              const std::vector<SubTablePair>& pairs,
                              std::size_t pair_idx, SubTableId id) {
  if (auto it = ps.credits.find(id); it != ps.credits.end() && it->second > 0) {
    --it->second;  // an earlier batch already pinned this occurrence
    if (auto cs = ps.credit_span.find(id); cs != ps.credit_span.end()) {
      ps.pair_fetch_span[pair_idx] = cs->second;
    }
    co_return;
  }
  if (cache.pin(id)) co_return;  // resident: pin is all we need
  const double t0 = sh.cluster.engine().now();
  if (fault::context() == nullptr && sh.options.coalesce_fetches) {
    // Gather upcoming misses served by the same storage node within the
    // lookahead window, then keep only the maximal on-disk-adjacent run
    // containing `id`: those chunks coalesce into one disk reservation
    // (one seek). Fetching non-adjacent ids together would save nothing
    // and delay the current pair behind the whole batch's transfer.
    const ChunkLocation& loc = sh.meta.chunk(id).location;
    std::vector<const ChunkMeta*> cands;
    std::unordered_set<SubTableId, SubTableIdHash> taken{id};
    const std::size_t window_end =
        std::min(pairs.size(), pair_idx + 1 + sh.options.prefetch_lookahead);
    for (std::size_t k = pair_idx + 1; k < window_end; ++k) {
      const SubTableId sides[2] = {pairs[k].left, pairs[k].right};
      for (const SubTableId cand : sides) {
        if (taken.count(cand) != 0) continue;
        if (auto it = ps.credits.find(cand);
            it != ps.credits.end() && it->second > 0) {
          continue;
        }
        if (cache.contains(cand)) continue;
        const ChunkMeta& cm = sh.meta.chunk(cand);
        if (cm.location.storage_node != loc.storage_node ||
            cm.location.file_no != loc.file_no) {
          continue;
        }
        taken.insert(cand);
        cands.push_back(&cm);
      }
    }
    std::sort(cands.begin(), cands.end(),
              [](const ChunkMeta* a, const ChunkMeta* b) {
                return a->location.offset < b->location.offset;
              });
    // Extend the run upward from `id`, then collect the chunks that chain
    // downward onto its start.
    std::vector<SubTableId> batch{id};
    std::uint64_t run_end = loc.offset + loc.size;
    for (const ChunkMeta* cm : cands) {
      if (cm->location.offset == run_end) {
        batch.push_back(cm->id);
        run_end += cm->location.size;
      }
    }
    std::uint64_t run_begin = loc.offset;
    for (auto it = cands.rbegin(); it != cands.rend(); ++it) {
      if ((*it)->location.offset + (*it)->location.size == run_begin) {
        batch.push_back((*it)->id);
        run_begin = (*it)->location.offset;
      }
    }
    obs::StageScope stage(obs::context(), "ij.fetch", sh.node_spans[node]);
    stage.tag("batch", static_cast<std::uint64_t>(batch.size()));
    ps.pair_fetch_span[pair_idx] = stage.id();
    sh.fetches += batch.size();
    const bool pushdown =
        !raw && sh.options.pushdown_selection && !sh.query.ranges.empty();
    auto tables =
        co_await sh.bds.instance(loc.storage_node)
            .fetch_batch_to_compute(batch, node,
                                    pushdown ? &sh.query.ranges : nullptr,
                                    obs::TraceContext{sh.trace_id, stage.id()});
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto st = std::move(tables[i]);
      if (!raw && !pushdown && !sh.query.ranges.empty()) {
        st = std::make_shared<const SubTable>(
            filter_rows(*st, st->schema(), sh.query.ranges));
      }
      cache.put_pinned(batch[i], std::move(st));
      if (i > 0) {
        ++ps.credits[batch[i]];
        ps.credit_span[batch[i]] = stage.id();
      }
    }
    sh.prefetch_issued += batch.size();
  } else {
    obs::SpanId fetch_span;
    auto st = co_await fetch_subtable(sh, id, node, raw, cache, &fetch_span);
    cache.put_pinned(id, std::move(st));
    ps.pair_fetch_span[pair_idx] = fetch_span;
    ++sh.prefetch_issued;
  }
  sh.fetch_busy += sh.cluster.engine().now() - t0;
}

/// The per-node prefetcher: walks the pair list ahead of the join loop,
/// pinning both sides of each pair before publishing its index. Always
/// closes the channel on the way out; failures are parked in ps.error for
/// the consumer to rethrow after the drain.
sim::Task<> ij_prefetcher(IjShared& sh, std::size_t node, bool raw,
                          CachingService& cache,
                          const std::vector<SubTablePair>& pairs,
                          IjPrefetchState& ps) {
  auto* inj = fault::context();
  try {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (ps.stop || (inj && inj->compute_down(node))) break;
      bool left_pinned = false;
      try {
        co_await ij_prefetch_fetch(sh, node, raw, cache, ps, pairs, i,
                                   pairs[i].left);
        left_pinned = true;
        if (ps.stop || (inj && inj->compute_down(node))) {
          cache.unpin(pairs[i].left);
          ++sh.prefetch_wasted;
          break;
        }
        co_await ij_prefetch_fetch(sh, node, raw, cache, ps, pairs, i,
                                   pairs[i].right);
      } catch (...) {
        if (left_pinned) {
          cache.unpin(pairs[i].left);
          ++sh.prefetch_wasted;
        }
        throw;
      }
      co_await ps.ch.send(i);
    }
  } catch (...) {
    ps.error = std::current_exception();
  }
  // Unspent batch credits hold pins nobody will ever consume.
  for (auto& [id, n] : ps.credits) {
    for (; n > 0; --n) {
      cache.unpin(id);
      ++sh.prefetch_wasted;
    }
  }
  ps.ch.close();
}

sim::Task<> ij_node(IjShared& sh, std::size_t node,
                    std::vector<SubTablePair> pairs, obs::TraceContext rpc,
                    std::uint64_t round) {
  const auto& hw = sh.cluster.spec().hw;
  const double factor = sh.options.cpu_work_factor;
  const std::uint64_t capacity = sh.options.cache_bytes
                                     ? sh.options.cache_bytes
                                     : sh.cluster.memory_bytes();
  // Session caches (if provided) persist across queries; raw sub-tables
  // are cached there and the selection moves to the join output.
  const bool persistent = sh.options.node_caches != nullptr;
  ORV_REQUIRE(!persistent || (sh.options.node_caches->size() > node &&
                              (*sh.options.node_caches)[node] != nullptr),
              "node_caches must hold one cache per compute node");
  CachingService local_cache(capacity, sh.options.cache_policy);
  CachingService& cache =
      persistent ? *(*sh.options.node_caches)[node] : local_cache;
  const CachingService::Stats stats_before = cache.stats();
  auto& cpu = sh.cluster.compute_cpu(node);
  ChunkId out_seq = 0;

  const double node_start = sh.cluster.engine().now();
  obs::StageScope node_stage(obs::context(), "ij.node", rpc.parent);
  node_stage.tag("node", static_cast<std::uint64_t>(node));
  node_stage.tag("pairs", static_cast<std::uint64_t>(pairs.size()));
  if (round > 0) node_stage.tag("round", round);
  sh.node_spans[node] = node_stage.id();

  ProbeGuard node_probes(sh.probes);
  if (sh.sampling) {
    node_probes.add(strformat("cache.bytes[%zu]", node),
                    [&cache] { return static_cast<double>(cache.used_bytes()); });
    node_probes.add(strformat("cache.pins[%zu]", node), [&cache] {
      return static_cast<double>(cache.pinned_count());
    });
  }

  auto* inj = fault::context();
  bool died = false;
  std::size_t next = 0;  // first pair whose output has NOT been accumulated
  if (sh.options.prefetch_lookahead > 0 && !pairs.empty()) {
    // Pipelined path: the prefetcher fetches + pins ahead while this loop
    // builds and probes, overlapping Transfer with Cpu.
    IjPrefetchState ps(sh.cluster.engine(), sh.options.prefetch_lookahead);
    ps.pair_fetch_span.resize(pairs.size());
    ProbeGuard ch_probe(sh.probes);
    if (sh.sampling) {
      ch_probe.add(strformat("prefetch.depth[%zu]", node), [&ps] {
        return static_cast<double>(ps.ch.size());
      });
    }
    const sim::JoinHandle pf = sh.cluster.engine().spawn(
        ij_prefetcher(sh, node, persistent, cache, pairs, ps),
        strformat("ij-prefetch-%zu", node));
    std::optional<std::size_t> inflight;  // recv'd pair whose pins we hold
    std::exception_ptr consumer_error;
    try {
      for (;;) {
        const double wait_from = sh.cluster.engine().now();
        // Consumer starvation on the bounded lookahead window: the walk
        // classifies this as cache-wait time on the critical path.
        obs::StageScope wait_stage(obs::context(), "ij.wait",
                                   node_stage.id());
        const auto idx = co_await ps.ch.recv();
        if (idx && ps.pair_fetch_span[*idx]) {
          // Causal edge into the fetch this wait was actually blocked on:
          // lets the critical path hop from a starved consumer into the
          // prefetcher's transfer instead of booking it all as cache-wait.
          if (auto* octx = obs::context()) {
            octx->tracer.link(wait_stage.id(), ps.pair_fetch_span[*idx]);
          }
        }
        wait_stage.close();
        if (!idx) break;  // prefetcher done (or failed: checked below)
        sh.consumer_wait += sh.cluster.engine().now() - wait_from;
        ORV_CHECK(*idx == next, "prefetched pairs must arrive in order");
        inflight = *idx;
        const auto& pair = pairs[next];
        // Same fail-stop bracketing as the serial path: abandon the pair
        // *before* accumulating its output. The in-flight pair's pins are
        // released by the shutdown protocol below.
        if (inj && inj->compute_down(node)) {
          died = true;
          break;
        }

        auto left = cache.get(pair.left);
        if (!left) {
          // Doomed while pinned (a failing re-fetch of the same chunk
          // invalidated it): fetch fresh, serial-path style.
          left =
              co_await fetch_subtable(sh, pair.left, node, persistent, cache);
          cache.put(pair.left, left);
        }
        auto ht = cache.get_hash_table(pair.left);
        if (!ht) {
          obs::StageScope build_stage(obs::context(), "ij.build",
                                      node_stage.id());
          co_await cpu.use(hw.gamma_build * factor *
                           static_cast<double>(left->num_rows()));
          ht = std::make_shared<const BuiltHashTable>(left,
                                                      sh.query.join_attrs);
          cache.attach_hash_table(pair.left, ht);
          ++sh.builds;
          sh.stats.build_tuples += left->num_rows();
          build_stage.tag("rows", left->num_rows());
        }
        if (inj && inj->compute_down(node)) {
          died = true;
          break;
        }

        auto right = cache.get(pair.right);
        if (!right) {
          right =
              co_await fetch_subtable(sh, pair.right, node, persistent, cache);
          cache.put(pair.right, right);
        }

        obs::StageScope probe_stage(obs::context(), "ij.probe",
                                    node_stage.id());
        co_await cpu.use(hw.gamma_lookup * factor *
                         static_cast<double>(right->num_rows()));
        if (inj && inj->compute_down(node)) {  // pre-accumulation check
          probe_stage.close();
          died = true;
          break;
        }
        SubTable out(sh.result_schema, SubTableId{0, out_seq++});
        const JoinStats s = ht->probe(*right, sh.query.join_attrs, out);
        probe_stage.tag("rows", right->num_rows());
        probe_stage.close();
        sh.stats.probe_tuples += s.probe_tuples;
        if (persistent && !sh.query.ranges.empty()) {
          out = filter_rows(out, out.schema(), sh.query.ranges);
        }
        sh.stats.result_tuples += out.num_rows();
        sh.result_tuples += out.num_rows();
        sh.fingerprint += out.unordered_fingerprint();
        if (sh.options.result_sink) sh.options.result_sink(node, out);
        cache.unpin(pair.left);
        cache.unpin(pair.right);
        inflight.reset();
        ++next;
      }
    } catch (...) {
      consumer_error = std::current_exception();
    }
    // Shutdown protocol (every exit takes it): release the in-flight
    // pair's pins, tell the prefetcher to stop, drain what it already
    // published (one pin per side per drained pair), and join it before
    // this frame — which the prefetcher references — goes away.
    if (inflight) {
      cache.unpin(pairs[*inflight].left);
      cache.unpin(pairs[*inflight].right);
      sh.prefetch_wasted += 2;
      inflight.reset();
    }
    ps.stop = true;
    for (;;) {
      const auto idx = co_await ps.ch.recv();
      if (!idx) break;
      cache.unpin(pairs[*idx].left);
      cache.unpin(pairs[*idx].right);
      sh.prefetch_wasted += 2;
    }
    co_await pf.join();
    if (consumer_error) std::rethrow_exception(consumer_error);
    // A prefetch failure on a pair a dead node never reached is not an
    // error — the pair is orphaned work for the supervisor.
    if (!died && ps.error) std::rethrow_exception(ps.error);
  } else {
  for (; next < pairs.size(); ++next) {
    const auto& pair = pairs[next];
    // Fail-stop checks bracket each pair: once the node's crash time has
    // passed it abandons the current pair *before* accumulating its output,
    // so every pair's result is emitted exactly once (here or at the
    // surviving node the supervisor re-assigns it to).
    if (inj && inj->compute_down(node)) {
      died = true;
      break;
    }

    // Left sub-table + its hash table (built once, cached).
    auto left = cache.get(pair.left);
    if (!left) {
      left = co_await fetch_subtable(sh, pair.left, node, persistent, cache);
      cache.put(pair.left, left);
    }
    auto ht = cache.get_hash_table(pair.left);
    if (!ht) {
      obs::StageScope build_stage(obs::context(), "ij.build",
                                  node_stage.id());
      co_await cpu.use(hw.gamma_build * factor *
                       static_cast<double>(left->num_rows()));
      ht = std::make_shared<const BuiltHashTable>(left, sh.query.join_attrs);
      cache.attach_hash_table(pair.left, ht);
      ++sh.builds;
      sh.stats.build_tuples += left->num_rows();
      build_stage.tag("rows", left->num_rows());
    }
    if (inj && inj->compute_down(node)) {  // mid-pair: fetches take time
      died = true;
      break;
    }

    // Right sub-table.
    auto right = cache.get(pair.right);
    if (!right) {
      right = co_await fetch_subtable(sh, pair.right, node, persistent, cache);
      cache.put(pair.right, right);
    }

    // Probe: one lookup per right record (join selectivity 1 per Sec. 5).
    obs::StageScope probe_stage(obs::context(), "ij.probe", node_stage.id());
    co_await cpu.use(hw.gamma_lookup * factor *
                     static_cast<double>(right->num_rows()));
    if (inj && inj->compute_down(node)) {  // pre-accumulation check
      probe_stage.close();
      died = true;
      break;
    }
    SubTable out(sh.result_schema, SubTableId{0, out_seq++});
    const JoinStats s = ht->probe(*right, sh.query.join_attrs, out);
    probe_stage.tag("rows", right->num_rows());
    probe_stage.close();
    sh.stats.probe_tuples += s.probe_tuples;
    if (persistent && !sh.query.ranges.empty()) {
      // Selection over the join output: equivalent to filtering the inputs
      // for conjunctive per-attribute ranges (key attrs survive the join).
      out = filter_rows(out, out.schema(), sh.query.ranges);
    }
    sh.stats.result_tuples += out.num_rows();
    sh.result_tuples += out.num_rows();
    sh.fingerprint += out.unordered_fingerprint();
    if (sh.options.result_sink) sh.options.result_sink(node, out);
  }
  }  // serial path
  if (died) {
    inj->note_crash_observed(fault::NodeKind::Compute, node);
    sh.dead[node] = 1;
    // Everything from the abandoned pair on is orphaned work for the
    // supervisor to re-assign.
    sh.orphans.insert(sh.orphans.end(), pairs.begin() + next, pairs.end());
    // The node span is about to close normally (RAII), but a trace
    // consumer must be able to tell an abandoned stage from a completed
    // one — mark it before the scope closes it.
    if (auto* octx = obs::context()) {
      octx->tracer.end_orphaned(node_stage.id());
    }
  }
  auto& nw = sh.node_work[node];
  nw.node = node;
  nw.busy_seconds += sh.cluster.engine().now() - node_start;
  nw.items += next;  // pairs whose output this node accumulated

  // Report only this run's cache activity (session caches accumulate).
  CachingService::Stats delta = cache.stats();
  delta.hits -= stats_before.hits;
  delta.misses -= stats_before.misses;
  delta.evictions -= stats_before.evictions;
  delta.bytes_evicted -= stats_before.bytes_evicted;
  delta.puts -= stats_before.puts;
  delta.invalidations -= stats_before.invalidations;
  merge_cache_stats(sh.cache_total, delta);
}

/// Spawns one worker per compute node, then supervises: when workers die
/// fail-stop, their orphaned pairs are re-distributed round-robin over the
/// survivors and a new round of workers runs. The dead set only grows and
/// chaos plans always leave a survivor, so the loop terminates; if every
/// node is lost the query fails with a clean FaultError instead of
/// hanging or dropping rows.
sim::Task<> ij_supervisor(IjShared& sh,
                          std::vector<std::vector<SubTablePair>> work) {
  auto& engine = sh.cluster.engine();
  // Every exit path (clean finish, all-nodes-lost FaultError) must stop
  // the occupancy sampler and pin down the query's true completion time:
  // a sampler tick after this frame unwinds advances engine.now() past it.
  struct Finished {
    IjShared& sh;
    sim::Engine& engine;
    ~Finished() {
      sh.done = true;
      sh.finished_at = engine.now();
    }
  } finished{sh, engine};
  obs::StageScope sup_stage(obs::context(), "ij.supervisor", sh.query_span);
  std::vector<char> alive(work.size(), 1);
  bool first_round = true;
  std::uint64_t round = 0;
  while (true) {
    std::vector<sim::JoinHandle> handles;
    for (std::size_t j = 0; j < work.size(); ++j) {
      if (!alive[j]) continue;
      // Round 0 spawns every node (even idle ones) so the fault-free run
      // is event-for-event identical to the pre-fault engine behaviour.
      if (!first_round && work[j].empty()) continue;
      handles.push_back(engine.spawn(
          ij_node(sh, j, std::move(work[j]),
                  obs::TraceContext{sh.trace_id, sup_stage.id()}, round),
          strformat("ij-node-%zu", j)));
    }
    first_round = false;
    for (auto& h : handles) co_await h.join();
    for (std::size_t j = 0; j < work.size(); ++j) {
      if (sh.dead[j] && alive[j]) {
        alive[j] = 0;
        ++sh.compute_nodes_lost;
      }
      work[j].clear();
    }
    if (sh.orphans.empty()) {
      if (round > 0) sup_stage.tag("rounds", round + 1);
      co_return;
    }
    std::vector<SubTablePair> orphans = std::move(sh.orphans);
    sh.orphans.clear();
    sh.pairs_reassigned += orphans.size();
    bool any_alive = false;
    for (char a : alive) any_alive = any_alive || a != 0;
    if (!any_alive) {
      throw fault::FaultError(
          "indexed join: every compute node crashed; query cannot complete");
    }
    work = redistribute_pairs(orphans, alive);
    ++round;
  }
}

}  // namespace

sim::Task<QesResult> indexed_join_task(Cluster& cluster, BdsService& bds,
                                       const MetaDataService& meta,
                                       const ConnectivityGraph& graph,
                                       const JoinQuery& query,
                                       const QesOptions& options) {
  ORV_REQUIRE(!query.join_attrs.empty(), "join needs key attributes");
  auto& engine = cluster.engine();

  const auto left_schema = meta.table_schema(query.left_table);
  const auto right_schema = meta.table_schema(query.right_table);
  const JoinKey right_key =
      JoinKey::resolve(*right_schema, query.join_attrs);
  IjShared sh{cluster,
              bds,
              meta,
              query,
              options,
              std::make_shared<const Schema>(Schema::join_result(
                  *left_schema, *right_schema, right_key.attr_indices()))};

  Schedule schedule;
  if (options.assign == ComponentAssign::CacheAffinity &&
      options.node_caches != nullptr) {
    // Follow warm session caches: send each component to the node already
    // holding most of its sub-table bytes.
    const auto& components = graph.components();
    std::vector<std::vector<double>> affinity(
        components.size(), std::vector<double>(cluster.num_compute(), 0.0));
    auto bytes_of = [&](SubTableId id) {
      const auto& cm = meta.chunk(id);
      return static_cast<double>(cm.num_rows * cm.schema->record_size());
    };
    for (std::size_t c = 0; c < components.size(); ++c) {
      for (std::size_t n = 0; n < cluster.num_compute(); ++n) {
        const auto& cache = (*options.node_caches)[n];
        for (const auto& id : components[c].left_subtables) {
          if (cache->contains(id)) affinity[c][n] += bytes_of(id);
        }
        for (const auto& id : components[c].right_subtables) {
          if (cache->contains(id)) affinity[c][n] += bytes_of(id);
        }
      }
    }
    schedule = make_schedule_with_affinity(graph, cluster.num_compute(),
                                           affinity, options.pair_order,
                                           options.seed);
  } else if (options.assign == ComponentAssign::PlacementAffinity) {
    // Follow the data: send each component to the compute node paired with
    // the storage node holding most of its bytes. On a colocated cluster
    // those fetches ride the local bus instead of the switch.
    schedule = make_schedule_placement_affinity(
        graph, cluster.num_compute(), meta, cluster.num_storage(),
        options.pair_order, options.seed);
  } else {
    schedule = make_schedule(graph, cluster.num_compute(), options.assign,
                             options.pair_order, options.seed);
  }

  // Resource byte counters before the run (clusters may be reused).
  const double net0 = cluster.network_bytes();
  const double switch0 = cluster.switch_bytes();
  const double local0 = cluster.local_bytes();
  const double sread0 = storage_read_bytes(cluster);

  sh.node_spans.resize(cluster.num_compute());
  sh.node_work.resize(cluster.num_compute());
  sh.dead.assign(cluster.num_compute(), 0);
  const double start = engine.now();
  auto* octx = obs::context();
  if (octx) {
    sh.trace_id = octx->next_trace_id();
    sh.query_span = octx->tracer.begin("ij.query");
    octx->tracer.tag(sh.query_span, "trace_id", sh.trace_id);
    octx->tracer.tag(sh.query_span, "algorithm", std::string("indexed_join"));
    sh.sampling = octx->sample_interval > 0;
  }
  const sim::JoinHandle sup = engine.spawn(
      ij_supervisor(sh, std::move(schedule.pairs_per_node)), "ij-supervisor");
  sim::JoinHandle sampler;
  if (sh.sampling) {
    sampler = engine.spawn(occupancy_sampler(cluster, octx, sh.probes, &sh.done),
                           "ij-sampler");
  }
  try {
    co_await sup.join();
  } catch (...) {
    // The query died (e.g. unrecoverable fault): close the root span so a
    // failed query never leaves dangling spans behind.
    if (octx) octx->tracer.end_orphaned(sh.query_span);
    throw;
  }
  ORV_CHECK(sup.done(), "IJ supervisor did not finish");

  QesResult result;
  // With the sampler on, its trailing wake-up advances engine.now() past
  // query completion; the supervisor recorded the true finish time.
  result.elapsed =
      (sh.sampling && sh.finished_at >= 0 ? sh.finished_at : engine.now()) -
      start;
  if (octx) {
    octx->tracer.end_at(sh.query_span, start + result.elapsed);
  }
  result.join_phase = result.elapsed;
  result.result_tuples = sh.result_tuples;
  result.result_fingerprint = sh.fingerprint;
  result.join_stats = sh.stats;
  result.subtable_fetches = sh.fetches;
  result.hash_tables_built = sh.builds;
  result.cache_stats = sh.cache_total;
  result.network_bytes = cluster.network_bytes() - net0;
  result.cross_switch_bytes = cluster.switch_bytes() - switch0;
  result.local_transfer_bytes = cluster.local_bytes() - local0;
  result.storage_disk_read_bytes = storage_read_bytes(cluster) - sread0;
  result.fetch_retries = sh.fetch_retries;
  result.pairs_reassigned = sh.pairs_reassigned;
  result.compute_nodes_lost = sh.compute_nodes_lost;
  result.prefetch_issued = sh.prefetch_issued;
  result.prefetch_wasted = sh.prefetch_wasted;
  result.node_work = std::move(sh.node_work);
  if (sh.fetch_busy > 0) {
    // 1 when the join loop never starved on the channel (all Transfer
    // hidden behind Cpu); 0 when every fetch second was waited out.
    result.overlap_ratio =
        std::max(0.0, 1.0 - sh.consumer_wait / sh.fetch_busy);
  }
  result.degraded = sh.fetch_retries > 0 || sh.pairs_reassigned > 0 ||
                    sh.compute_nodes_lost > 0;
  if (result.degraded) {
    if (auto* ctx = obs::context()) {
      ctx->registry.counter("query.degraded").add(1);
    }
  }
  if (auto* ctx = obs::context()) {
    ctx->registry.counter("ij.subtable_fetches").add(sh.fetches);
    ctx->registry.counter("ij.hash_tables_built").add(sh.builds);
    ctx->registry.counter("ij.result_tuples").add(sh.result_tuples);
    ctx->registry.gauge("ij.elapsed_seconds").set(result.elapsed);
    if (options.prefetch_lookahead > 0) {
      ctx->registry.counter("prefetch.issued").add(sh.prefetch_issued);
      ctx->registry.counter("prefetch.wasted").add(sh.prefetch_wasted);
      ctx->registry.gauge("ij.overlap_ratio").set(result.overlap_ratio);
    }
  }
  co_return result;
}

QesResult run_indexed_join(Cluster& cluster, BdsService& bds,
                           const MetaDataService& meta,
                           const ConnectivityGraph& graph,
                           const JoinQuery& query, const QesOptions& options) {
  return qes_detail::run_query_task(
      cluster.engine(),
      indexed_join_task(cluster, bds, meta, graph, query, options),
      "ij-query");
}

}  // namespace orv
