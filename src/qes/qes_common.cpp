#include <memory>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "qes/qes.hpp"

namespace orv {

namespace qes_detail {

namespace {
struct ResultBox {
  QesResult result;
  bool have = false;
};

sim::Task<> capture_result(sim::Task<QesResult> inner,
                           std::shared_ptr<ResultBox> box) {
  box->result = co_await std::move(inner);
  box->have = true;
}
}  // namespace

QesResult run_query_task(sim::Engine& engine, sim::Task<QesResult> task,
                         const char* name) {
  // The box is shared with the coroutine frame: on a failed query the
  // frame outlives this scope (it is destroyed with the engine), so a
  // plain stack reference would dangle.
  auto box = std::make_shared<ResultBox>();
  engine.spawn(capture_result(std::move(task), box), name);
  engine.run();
  ORV_CHECK(box->have, "query task did not complete");
  return std::move(box->result);
}

}  // namespace qes_detail

SubTable filter_rows(const SubTable& st, const Schema& schema,
                     const std::vector<AttrRange>& ranges) {
  Rect pred = Rect::unbounded(schema.num_attrs());
  bool constrained = false;
  for (const auto& r : ranges) {
    if (auto idx = schema.index_of(r.attr)) {
      pred[*idx] = pred[*idx].intersect(r.range);
      constrained = true;
    }
  }
  if (!constrained) {
    SubTable copy(st.schema_ptr(), st.id());
    auto bytes = st.bytes();
    copy.adopt_bytes({bytes.begin(), bytes.end()});
    copy.set_bounds(st.bounds());
    return copy;
  }
  SubTable out(st.schema_ptr(), st.id());
  for (std::size_t r = 0; r < st.num_rows(); ++r) {
    if (st.row_in(r, pred)) {
      out.append_row({st.row(r), st.record_size()});
    }
  }
  out.compute_bounds();
  return out;
}

ReferenceResult reference_join(
    const MetaDataService& meta,
    const std::vector<std::shared_ptr<ChunkStore>>& stores,
    const JoinQuery& query) {
  auto load_table = [&](TableId table) {
    SubTable all(meta.table_schema(table), SubTableId{table, 0});
    for (const auto& cm : meta.chunks(table)) {
      const auto bytes = stores.at(cm.location.storage_node)->read(cm.location);
      SubTable st = extract_chunk(bytes);
      SubTable filtered = filter_rows(st, st.schema(), query.ranges);
      for (std::size_t r = 0; r < filtered.num_rows(); ++r) {
        all.append_row({filtered.row(r), filtered.record_size()});
      }
    }
    return all;
  };
  const SubTable left = load_table(query.left_table);
  const SubTable right = load_table(query.right_table);
  const SubTable joined =
      hash_join(left, right, query.join_attrs, SubTableId{0, 0});
  ReferenceResult res;
  res.result_tuples = joined.num_rows();
  res.result_fingerprint = joined.unordered_fingerprint();
  return res;
}

ReferenceResult nested_loop_reference(
    const MetaDataService& meta,
    const std::vector<std::shared_ptr<ChunkStore>>& stores,
    const JoinQuery& query) {
  auto load_table = [&](TableId table) {
    SubTable all(meta.table_schema(table), SubTableId{table, 0});
    for (const auto& cm : meta.chunks(table)) {
      const auto bytes = stores.at(cm.location.storage_node)->read(cm.location);
      SubTable st = extract_chunk(bytes);
      SubTable filtered = filter_rows(st, st.schema(), query.ranges);
      for (std::size_t r = 0; r < filtered.num_rows(); ++r) {
        all.append_row({filtered.row(r), filtered.record_size()});
      }
    }
    return all;
  };
  const SubTable left = load_table(query.left_table);
  const SubTable right = load_table(query.right_table);
  const SubTable joined =
      nested_loop_join(left, right, query.join_attrs, SubTableId{0, 0});
  ReferenceResult res;
  res.result_tuples = joined.num_rows();
  res.result_fingerprint = joined.unordered_fingerprint();
  return res;
}

std::string QesResult::to_string() const {
  std::string s = strformat(
      "elapsed=%.3fs tuples=%llu (partition=%.3fs join=%.3fs) "
      "net=%s scratch(w/r)=%s/%s fetches=%llu builds=%llu "
      "cache(h/m/e)=%llu/%llu/%llu",
      elapsed, (unsigned long long)result_tuples, partition_phase, join_phase,
      human_bytes(static_cast<std::uint64_t>(network_bytes)).c_str(),
      human_bytes(static_cast<std::uint64_t>(scratch_write_bytes)).c_str(),
      human_bytes(static_cast<std::uint64_t>(scratch_read_bytes)).c_str(),
      (unsigned long long)subtable_fetches,
      (unsigned long long)hash_tables_built,
      (unsigned long long)cache_stats.hits,
      (unsigned long long)cache_stats.misses,
      (unsigned long long)cache_stats.evictions);
  if (local_transfer_bytes > 0) {
    s += strformat(
        " switch=%s local=%s",
        human_bytes(static_cast<std::uint64_t>(cross_switch_bytes)).c_str(),
        human_bytes(static_cast<std::uint64_t>(local_transfer_bytes)).c_str());
  }
  if (degraded) {
    s += strformat(
        " DEGRADED retries=%llu pairs_reassigned=%llu "
        "rows_repartitioned=%llu compute_lost=%llu",
        (unsigned long long)fetch_retries,
        (unsigned long long)pairs_reassigned,
        (unsigned long long)rows_repartitioned,
        (unsigned long long)compute_nodes_lost);
  }
  return s;
}

}  // namespace orv
