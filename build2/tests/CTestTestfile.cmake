# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/test_common[1]_include.cmake")
include("/root/repo/build2/tests/test_sim[1]_include.cmake")
include("/root/repo/build2/tests/test_join[1]_include.cmake")
include("/root/repo/build2/tests/test_datagen[1]_include.cmake")
include("/root/repo/build2/tests/test_qes[1]_include.cmake")
include("/root/repo/build2/tests/test_schema[1]_include.cmake")
include("/root/repo/build2/tests/test_subtable[1]_include.cmake")
include("/root/repo/build2/tests/test_chunkio[1]_include.cmake")
include("/root/repo/build2/tests/test_extract[1]_include.cmake")
include("/root/repo/build2/tests/test_rtree[1]_include.cmake")
include("/root/repo/build2/tests/test_meta[1]_include.cmake")
include("/root/repo/build2/tests/test_cache[1]_include.cmake")
include("/root/repo/build2/tests/test_sched[1]_include.cmake")
include("/root/repo/build2/tests/test_graph[1]_include.cmake")
include("/root/repo/build2/tests/test_cost[1]_include.cmake")
include("/root/repo/build2/tests/test_qps[1]_include.cmake")
include("/root/repo/build2/tests/test_dds[1]_include.cmake")
include("/root/repo/build2/tests/test_query[1]_include.cmake")
include("/root/repo/build2/tests/test_core[1]_include.cmake")
include("/root/repo/build2/tests/test_cluster[1]_include.cmake")
include("/root/repo/build2/tests/test_bds[1]_include.cmake")
include("/root/repo/build2/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build2/tests/test_misc[1]_include.cmake")
