# Empty dependencies file for test_join.
# This may be replaced when dependencies are built.
