file(REMOVE_RECURSE
  "CMakeFiles/test_join.dir/join/hash_join_test.cpp.o"
  "CMakeFiles/test_join.dir/join/hash_join_test.cpp.o.d"
  "CMakeFiles/test_join.dir/join/join_kernel_test.cpp.o"
  "CMakeFiles/test_join.dir/join/join_kernel_test.cpp.o.d"
  "test_join"
  "test_join.pdb"
  "test_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
