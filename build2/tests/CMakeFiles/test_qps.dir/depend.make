# Empty dependencies file for test_qps.
# This may be replaced when dependencies are built.
