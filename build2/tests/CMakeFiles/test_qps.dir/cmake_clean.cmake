file(REMOVE_RECURSE
  "CMakeFiles/test_qps.dir/qps/planner_test.cpp.o"
  "CMakeFiles/test_qps.dir/qps/planner_test.cpp.o.d"
  "test_qps"
  "test_qps.pdb"
  "test_qps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
