file(REMOVE_RECURSE
  "CMakeFiles/test_chunkio.dir/chunkio/chunkio_test.cpp.o"
  "CMakeFiles/test_chunkio.dir/chunkio/chunkio_test.cpp.o.d"
  "test_chunkio"
  "test_chunkio.pdb"
  "test_chunkio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunkio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
