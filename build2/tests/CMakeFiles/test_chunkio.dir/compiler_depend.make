# Empty compiler generated dependencies file for test_chunkio.
# This may be replaced when dependencies are built.
