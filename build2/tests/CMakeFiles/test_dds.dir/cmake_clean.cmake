file(REMOVE_RECURSE
  "CMakeFiles/test_dds.dir/dds/aggregate_test.cpp.o"
  "CMakeFiles/test_dds.dir/dds/aggregate_test.cpp.o.d"
  "CMakeFiles/test_dds.dir/dds/distributed_test.cpp.o"
  "CMakeFiles/test_dds.dir/dds/distributed_test.cpp.o.d"
  "CMakeFiles/test_dds.dir/dds/local_executor_test.cpp.o"
  "CMakeFiles/test_dds.dir/dds/local_executor_test.cpp.o.d"
  "CMakeFiles/test_dds.dir/dds/parallel_executor_test.cpp.o"
  "CMakeFiles/test_dds.dir/dds/parallel_executor_test.cpp.o.d"
  "CMakeFiles/test_dds.dir/dds/view_def_test.cpp.o"
  "CMakeFiles/test_dds.dir/dds/view_def_test.cpp.o.d"
  "test_dds"
  "test_dds.pdb"
  "test_dds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
