# Empty dependencies file for test_dds.
# This may be replaced when dependencies are built.
