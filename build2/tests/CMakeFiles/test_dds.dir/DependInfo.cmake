
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dds/aggregate_test.cpp" "tests/CMakeFiles/test_dds.dir/dds/aggregate_test.cpp.o" "gcc" "tests/CMakeFiles/test_dds.dir/dds/aggregate_test.cpp.o.d"
  "/root/repo/tests/dds/distributed_test.cpp" "tests/CMakeFiles/test_dds.dir/dds/distributed_test.cpp.o" "gcc" "tests/CMakeFiles/test_dds.dir/dds/distributed_test.cpp.o.d"
  "/root/repo/tests/dds/local_executor_test.cpp" "tests/CMakeFiles/test_dds.dir/dds/local_executor_test.cpp.o" "gcc" "tests/CMakeFiles/test_dds.dir/dds/local_executor_test.cpp.o.d"
  "/root/repo/tests/dds/parallel_executor_test.cpp" "tests/CMakeFiles/test_dds.dir/dds/parallel_executor_test.cpp.o" "gcc" "tests/CMakeFiles/test_dds.dir/dds/parallel_executor_test.cpp.o.d"
  "/root/repo/tests/dds/view_def_test.cpp" "tests/CMakeFiles/test_dds.dir/dds/view_def_test.cpp.o" "gcc" "tests/CMakeFiles/test_dds.dir/dds/view_def_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/orv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
