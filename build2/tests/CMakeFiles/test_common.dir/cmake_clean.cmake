file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/bytes_test.cpp.o"
  "CMakeFiles/test_common.dir/common/bytes_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/prng_test.cpp.o"
  "CMakeFiles/test_common.dir/common/prng_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/strings_test.cpp.o"
  "CMakeFiles/test_common.dir/common/strings_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/tempdir_test.cpp.o"
  "CMakeFiles/test_common.dir/common/tempdir_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/thread_pool_test.cpp.o"
  "CMakeFiles/test_common.dir/common/thread_pool_test.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
