# Empty compiler generated dependencies file for test_subtable.
# This may be replaced when dependencies are built.
