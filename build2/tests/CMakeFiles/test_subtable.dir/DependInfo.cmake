
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/subtable/bounds_test.cpp" "tests/CMakeFiles/test_subtable.dir/subtable/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/test_subtable.dir/subtable/bounds_test.cpp.o.d"
  "/root/repo/tests/subtable/subtable_test.cpp" "tests/CMakeFiles/test_subtable.dir/subtable/subtable_test.cpp.o" "gcc" "tests/CMakeFiles/test_subtable.dir/subtable/subtable_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/orv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
