file(REMOVE_RECURSE
  "CMakeFiles/test_subtable.dir/subtable/bounds_test.cpp.o"
  "CMakeFiles/test_subtable.dir/subtable/bounds_test.cpp.o.d"
  "CMakeFiles/test_subtable.dir/subtable/subtable_test.cpp.o"
  "CMakeFiles/test_subtable.dir/subtable/subtable_test.cpp.o.d"
  "test_subtable"
  "test_subtable.pdb"
  "test_subtable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
