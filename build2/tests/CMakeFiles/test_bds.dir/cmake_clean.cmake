file(REMOVE_RECURSE
  "CMakeFiles/test_bds.dir/bds/bds_test.cpp.o"
  "CMakeFiles/test_bds.dir/bds/bds_test.cpp.o.d"
  "test_bds"
  "test_bds.pdb"
  "test_bds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
