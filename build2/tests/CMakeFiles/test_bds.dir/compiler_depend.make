# Empty compiler generated dependencies file for test_bds.
# This may be replaced when dependencies are built.
