# Empty compiler generated dependencies file for test_qes.
# This may be replaced when dependencies are built.
