file(REMOVE_RECURSE
  "CMakeFiles/test_qes.dir/qes/grace_hash_invariants_test.cpp.o"
  "CMakeFiles/test_qes.dir/qes/grace_hash_invariants_test.cpp.o.d"
  "CMakeFiles/test_qes.dir/qes/qes_test.cpp.o"
  "CMakeFiles/test_qes.dir/qes/qes_test.cpp.o.d"
  "CMakeFiles/test_qes.dir/qes/scan_aggregate_test.cpp.o"
  "CMakeFiles/test_qes.dir/qes/scan_aggregate_test.cpp.o.d"
  "CMakeFiles/test_qes.dir/qes/session_cache_test.cpp.o"
  "CMakeFiles/test_qes.dir/qes/session_cache_test.cpp.o.d"
  "test_qes"
  "test_qes.pdb"
  "test_qes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
