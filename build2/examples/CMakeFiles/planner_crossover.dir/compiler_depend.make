# Empty compiler generated dependencies file for planner_crossover.
# This may be replaced when dependencies are built.
