file(REMOVE_RECURSE
  "CMakeFiles/planner_crossover.dir/planner_crossover.cpp.o"
  "CMakeFiles/planner_crossover.dir/planner_crossover.cpp.o.d"
  "planner_crossover"
  "planner_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
