# Empty dependencies file for satellite_mosaic.
# This may be replaced when dependencies are built.
