file(REMOVE_RECURSE
  "CMakeFiles/satellite_mosaic.dir/satellite_mosaic.cpp.o"
  "CMakeFiles/satellite_mosaic.dir/satellite_mosaic.cpp.o.d"
  "satellite_mosaic"
  "satellite_mosaic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_mosaic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
