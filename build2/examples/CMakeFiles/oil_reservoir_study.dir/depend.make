# Empty dependencies file for oil_reservoir_study.
# This may be replaced when dependencies are built.
