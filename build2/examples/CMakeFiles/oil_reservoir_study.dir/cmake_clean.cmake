file(REMOVE_RECURSE
  "CMakeFiles/oil_reservoir_study.dir/oil_reservoir_study.cpp.o"
  "CMakeFiles/oil_reservoir_study.dir/oil_reservoir_study.cpp.o.d"
  "oil_reservoir_study"
  "oil_reservoir_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oil_reservoir_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
