# Empty dependencies file for orv_shell.
# This may be replaced when dependencies are built.
