file(REMOVE_RECURSE
  "CMakeFiles/orv_shell.dir/orv_shell.cpp.o"
  "CMakeFiles/orv_shell.dir/orv_shell.cpp.o.d"
  "orv_shell"
  "orv_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orv_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
