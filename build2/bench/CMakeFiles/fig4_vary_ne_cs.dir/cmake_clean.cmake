file(REMOVE_RECURSE
  "CMakeFiles/fig4_vary_ne_cs.dir/fig4_vary_ne_cs.cpp.o"
  "CMakeFiles/fig4_vary_ne_cs.dir/fig4_vary_ne_cs.cpp.o.d"
  "fig4_vary_ne_cs"
  "fig4_vary_ne_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vary_ne_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
