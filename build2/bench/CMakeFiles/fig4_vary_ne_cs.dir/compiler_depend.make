# Empty compiler generated dependencies file for fig4_vary_ne_cs.
# This may be replaced when dependencies are built.
