file(REMOVE_RECURSE
  "CMakeFiles/micro_extract.dir/micro_extract.cpp.o"
  "CMakeFiles/micro_extract.dir/micro_extract.cpp.o.d"
  "micro_extract"
  "micro_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
