# Empty dependencies file for fig5_vary_compute_nodes.
# This may be replaced when dependencies are built.
