file(REMOVE_RECURSE
  "CMakeFiles/fig5_vary_compute_nodes.dir/fig5_vary_compute_nodes.cpp.o"
  "CMakeFiles/fig5_vary_compute_nodes.dir/fig5_vary_compute_nodes.cpp.o.d"
  "fig5_vary_compute_nodes"
  "fig5_vary_compute_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vary_compute_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
