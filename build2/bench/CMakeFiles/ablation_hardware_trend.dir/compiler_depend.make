# Empty compiler generated dependencies file for ablation_hardware_trend.
# This may be replaced when dependencies are built.
