file(REMOVE_RECURSE
  "CMakeFiles/ablation_hardware_trend.dir/ablation_hardware_trend.cpp.o"
  "CMakeFiles/ablation_hardware_trend.dir/ablation_hardware_trend.cpp.o.d"
  "ablation_hardware_trend"
  "ablation_hardware_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hardware_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
