file(REMOVE_RECURSE
  "CMakeFiles/ablation_session_cache.dir/ablation_session_cache.cpp.o"
  "CMakeFiles/ablation_session_cache.dir/ablation_session_cache.cpp.o.d"
  "ablation_session_cache"
  "ablation_session_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_session_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
