# Empty compiler generated dependencies file for ablation_session_cache.
# This may be replaced when dependencies are built.
