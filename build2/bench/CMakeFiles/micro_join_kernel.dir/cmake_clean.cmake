file(REMOVE_RECURSE
  "CMakeFiles/micro_join_kernel.dir/micro_join_kernel.cpp.o"
  "CMakeFiles/micro_join_kernel.dir/micro_join_kernel.cpp.o.d"
  "micro_join_kernel"
  "micro_join_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_join_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
