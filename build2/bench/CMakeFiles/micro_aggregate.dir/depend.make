# Empty dependencies file for micro_aggregate.
# This may be replaced when dependencies are built.
