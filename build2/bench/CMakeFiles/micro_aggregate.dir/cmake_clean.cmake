file(REMOVE_RECURSE
  "CMakeFiles/micro_aggregate.dir/micro_aggregate.cpp.o"
  "CMakeFiles/micro_aggregate.dir/micro_aggregate.cpp.o.d"
  "micro_aggregate"
  "micro_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
