file(REMOVE_RECURSE
  "CMakeFiles/fig8_compute_power.dir/fig8_compute_power.cpp.o"
  "CMakeFiles/fig8_compute_power.dir/fig8_compute_power.cpp.o.d"
  "fig8_compute_power"
  "fig8_compute_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_compute_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
