# Empty compiler generated dependencies file for fig8_compute_power.
# This may be replaced when dependencies are built.
