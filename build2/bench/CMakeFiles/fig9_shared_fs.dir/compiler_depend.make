# Empty compiler generated dependencies file for fig9_shared_fs.
# This may be replaced when dependencies are built.
