file(REMOVE_RECURSE
  "CMakeFiles/fig9_shared_fs.dir/fig9_shared_fs.cpp.o"
  "CMakeFiles/fig9_shared_fs.dir/fig9_shared_fs.cpp.o.d"
  "fig9_shared_fs"
  "fig9_shared_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_shared_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
