file(REMOVE_RECURSE
  "CMakeFiles/ablation_gh_knobs.dir/ablation_gh_knobs.cpp.o"
  "CMakeFiles/ablation_gh_knobs.dir/ablation_gh_knobs.cpp.o.d"
  "ablation_gh_knobs"
  "ablation_gh_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gh_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
