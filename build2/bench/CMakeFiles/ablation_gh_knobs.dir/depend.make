# Empty dependencies file for ablation_gh_knobs.
# This may be replaced when dependencies are built.
