file(REMOVE_RECURSE
  "CMakeFiles/fig7_vary_attributes.dir/fig7_vary_attributes.cpp.o"
  "CMakeFiles/fig7_vary_attributes.dir/fig7_vary_attributes.cpp.o.d"
  "fig7_vary_attributes"
  "fig7_vary_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vary_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
