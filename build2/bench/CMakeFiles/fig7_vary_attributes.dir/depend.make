# Empty dependencies file for fig7_vary_attributes.
# This may be replaced when dependencies are built.
