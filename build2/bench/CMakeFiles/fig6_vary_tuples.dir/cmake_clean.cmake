file(REMOVE_RECURSE
  "CMakeFiles/fig6_vary_tuples.dir/fig6_vary_tuples.cpp.o"
  "CMakeFiles/fig6_vary_tuples.dir/fig6_vary_tuples.cpp.o.d"
  "fig6_vary_tuples"
  "fig6_vary_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vary_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
