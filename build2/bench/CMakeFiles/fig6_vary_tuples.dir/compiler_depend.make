# Empty compiler generated dependencies file for fig6_vary_tuples.
# This may be replaced when dependencies are built.
