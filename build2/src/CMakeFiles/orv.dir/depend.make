# Empty dependencies file for orv.
# This may be replaced when dependencies are built.
