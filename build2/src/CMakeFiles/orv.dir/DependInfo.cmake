
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bds/bds.cpp" "src/CMakeFiles/orv.dir/bds/bds.cpp.o" "gcc" "src/CMakeFiles/orv.dir/bds/bds.cpp.o.d"
  "/root/repo/src/cache/caching_service.cpp" "src/CMakeFiles/orv.dir/cache/caching_service.cpp.o" "gcc" "src/CMakeFiles/orv.dir/cache/caching_service.cpp.o.d"
  "/root/repo/src/chunkio/chunk_format.cpp" "src/CMakeFiles/orv.dir/chunkio/chunk_format.cpp.o" "gcc" "src/CMakeFiles/orv.dir/chunkio/chunk_format.cpp.o.d"
  "/root/repo/src/chunkio/chunk_store.cpp" "src/CMakeFiles/orv.dir/chunkio/chunk_store.cpp.o" "gcc" "src/CMakeFiles/orv.dir/chunkio/chunk_store.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/orv.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/orv.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/hardware.cpp" "src/CMakeFiles/orv.dir/cluster/hardware.cpp.o" "gcc" "src/CMakeFiles/orv.dir/cluster/hardware.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/orv.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/orv.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/orv.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/orv.dir/common/error.cpp.o.d"
  "/root/repo/src/common/hash.cpp" "src/CMakeFiles/orv.dir/common/hash.cpp.o" "gcc" "src/CMakeFiles/orv.dir/common/hash.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/orv.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/orv.dir/common/log.cpp.o.d"
  "/root/repo/src/common/prng.cpp" "src/CMakeFiles/orv.dir/common/prng.cpp.o" "gcc" "src/CMakeFiles/orv.dir/common/prng.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/orv.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/orv.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/tempdir.cpp" "src/CMakeFiles/orv.dir/common/tempdir.cpp.o" "gcc" "src/CMakeFiles/orv.dir/common/tempdir.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/orv.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/orv.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/catalog_io.cpp" "src/CMakeFiles/orv.dir/core/catalog_io.cpp.o" "gcc" "src/CMakeFiles/orv.dir/core/catalog_io.cpp.o.d"
  "/root/repo/src/core/view_framework.cpp" "src/CMakeFiles/orv.dir/core/view_framework.cpp.o" "gcc" "src/CMakeFiles/orv.dir/core/view_framework.cpp.o.d"
  "/root/repo/src/cost/cost_model.cpp" "src/CMakeFiles/orv.dir/cost/cost_model.cpp.o" "gcc" "src/CMakeFiles/orv.dir/cost/cost_model.cpp.o.d"
  "/root/repo/src/datagen/dataset_spec.cpp" "src/CMakeFiles/orv.dir/datagen/dataset_spec.cpp.o" "gcc" "src/CMakeFiles/orv.dir/datagen/dataset_spec.cpp.o.d"
  "/root/repo/src/datagen/generator.cpp" "src/CMakeFiles/orv.dir/datagen/generator.cpp.o" "gcc" "src/CMakeFiles/orv.dir/datagen/generator.cpp.o.d"
  "/root/repo/src/dds/aggregate.cpp" "src/CMakeFiles/orv.dir/dds/aggregate.cpp.o" "gcc" "src/CMakeFiles/orv.dir/dds/aggregate.cpp.o.d"
  "/root/repo/src/dds/distributed.cpp" "src/CMakeFiles/orv.dir/dds/distributed.cpp.o" "gcc" "src/CMakeFiles/orv.dir/dds/distributed.cpp.o.d"
  "/root/repo/src/dds/local_executor.cpp" "src/CMakeFiles/orv.dir/dds/local_executor.cpp.o" "gcc" "src/CMakeFiles/orv.dir/dds/local_executor.cpp.o.d"
  "/root/repo/src/dds/view_def.cpp" "src/CMakeFiles/orv.dir/dds/view_def.cpp.o" "gcc" "src/CMakeFiles/orv.dir/dds/view_def.cpp.o.d"
  "/root/repo/src/extract/extractor.cpp" "src/CMakeFiles/orv.dir/extract/extractor.cpp.o" "gcc" "src/CMakeFiles/orv.dir/extract/extractor.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/orv.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/orv.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/page_index.cpp" "src/CMakeFiles/orv.dir/graph/page_index.cpp.o" "gcc" "src/CMakeFiles/orv.dir/graph/page_index.cpp.o.d"
  "/root/repo/src/join/hash_join.cpp" "src/CMakeFiles/orv.dir/join/hash_join.cpp.o" "gcc" "src/CMakeFiles/orv.dir/join/hash_join.cpp.o.d"
  "/root/repo/src/join/key.cpp" "src/CMakeFiles/orv.dir/join/key.cpp.o" "gcc" "src/CMakeFiles/orv.dir/join/key.cpp.o.d"
  "/root/repo/src/meta/metadata.cpp" "src/CMakeFiles/orv.dir/meta/metadata.cpp.o" "gcc" "src/CMakeFiles/orv.dir/meta/metadata.cpp.o.d"
  "/root/repo/src/qes/grace_hash.cpp" "src/CMakeFiles/orv.dir/qes/grace_hash.cpp.o" "gcc" "src/CMakeFiles/orv.dir/qes/grace_hash.cpp.o.d"
  "/root/repo/src/qes/indexed_join.cpp" "src/CMakeFiles/orv.dir/qes/indexed_join.cpp.o" "gcc" "src/CMakeFiles/orv.dir/qes/indexed_join.cpp.o.d"
  "/root/repo/src/qes/qes_common.cpp" "src/CMakeFiles/orv.dir/qes/qes_common.cpp.o" "gcc" "src/CMakeFiles/orv.dir/qes/qes_common.cpp.o.d"
  "/root/repo/src/qes/scan_aggregate.cpp" "src/CMakeFiles/orv.dir/qes/scan_aggregate.cpp.o" "gcc" "src/CMakeFiles/orv.dir/qes/scan_aggregate.cpp.o.d"
  "/root/repo/src/qps/planner.cpp" "src/CMakeFiles/orv.dir/qps/planner.cpp.o" "gcc" "src/CMakeFiles/orv.dir/qps/planner.cpp.o.d"
  "/root/repo/src/query/parser.cpp" "src/CMakeFiles/orv.dir/query/parser.cpp.o" "gcc" "src/CMakeFiles/orv.dir/query/parser.cpp.o.d"
  "/root/repo/src/rtree/rtree.cpp" "src/CMakeFiles/orv.dir/rtree/rtree.cpp.o" "gcc" "src/CMakeFiles/orv.dir/rtree/rtree.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/orv.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/orv.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/schema/schema.cpp" "src/CMakeFiles/orv.dir/schema/schema.cpp.o" "gcc" "src/CMakeFiles/orv.dir/schema/schema.cpp.o.d"
  "/root/repo/src/schema/value.cpp" "src/CMakeFiles/orv.dir/schema/value.cpp.o" "gcc" "src/CMakeFiles/orv.dir/schema/value.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/orv.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/orv.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/orv.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/orv.dir/sim/resource.cpp.o.d"
  "/root/repo/src/subtable/bounds.cpp" "src/CMakeFiles/orv.dir/subtable/bounds.cpp.o" "gcc" "src/CMakeFiles/orv.dir/subtable/bounds.cpp.o.d"
  "/root/repo/src/subtable/subtable.cpp" "src/CMakeFiles/orv.dir/subtable/subtable.cpp.o" "gcc" "src/CMakeFiles/orv.dir/subtable/subtable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
