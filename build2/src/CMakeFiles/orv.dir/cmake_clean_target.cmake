file(REMOVE_RECURSE
  "liborv.a"
)
