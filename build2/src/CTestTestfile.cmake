# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("schema")
subdirs("subtable")
subdirs("chunkio")
subdirs("extract")
subdirs("rtree")
subdirs("meta")
subdirs("datagen")
subdirs("sim")
subdirs("cluster")
subdirs("bds")
subdirs("cache")
subdirs("join")
subdirs("graph")
subdirs("sched")
subdirs("qes")
subdirs("cost")
subdirs("qps")
subdirs("dds")
subdirs("query")
subdirs("core")
