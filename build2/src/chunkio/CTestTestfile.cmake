# CMake generated Testfile for 
# Source directory: /root/repo/src/chunkio
# Build directory: /root/repo/build2/src/chunkio
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
