// Ablation: per-destination message aggregation vs flush threshold.
//
// Two corners of the same 32^3 join, both shuffling ~272 h1 batches of
// 4 KiB through the switch:
//
//   message_bound    net_msg_overhead = 1 ms — the per-frame gamma
//                    dominates GH's partition phase, so combining
//                    batches into frames cuts elapsed nearly in
//                    proportion to the frame count.
//   bandwidth_bound  net_msg_overhead = 0 — frames are free, so any
//                    flush threshold must leave elapsed unchanged (the
//                    same bytes cross the same links).
//
// Flush threshold swept 1-64 logical batches plus the adaptive
// controller; fingerprints never change, and the extended gh_cost model
// (agg_flush_batches) tracks the simulated times.
//
//   --check   CI aggregation-smoke mode: asserts flush 16 cuts switch
//             frames >= 8x and elapsed >= 15% at the message-bound
//             corner, and moves the bandwidth-bound corner by < 1%,
//             with byte-identical fingerprints everywhere.

#include <cstring>
#include <optional>

#include "bench_util.hpp"
#include "net/aggregator.hpp"

namespace {

using namespace orv;

struct Corner {
  const char* name;
  double gamma;
};

constexpr Corner kMessageBound{"message_bound", 1e-3};
constexpr Corner kBandwidthBound{"bandwidth_bound", 0.0};

struct CornerRig {
  DatasetSpec data;
  ClusterSpec cluster;
  QesOptions options;
  GeneratedDataset ds;
  JoinQuery query;

  explicit CornerRig(const Corner& corner) {
    data.grid = {32, 32, 32};
    data.part1 = {8, 8, 8};
    data.part2 = {8, 8, 8};
    cluster.num_storage = 4;
    cluster.num_compute = 4;
    data.num_storage_nodes = cluster.num_storage;
    cluster.hw.net_msg_overhead = corner.gamma;
    options.batch_bytes = 4096;  // many small h1 messages
    ds = generate_dataset(data);
    query = {data.table1_id, data.table2_id, {"x", "y", "z"}, {}};
  }

  /// One GH run on a fresh engine; `final_flush` reports the threshold the
  /// adaptive controller settled on (== the config for fixed sweeps).
  QesResult run(const net::AggregatorConfig* cfg,
                std::size_t* final_flush = nullptr) {
    sim::Engine engine;
    Cluster cluster_inst(engine, cluster);
    BdsService bds(cluster_inst, ds.meta, ds.stores);
    std::optional<net::MessageAggregator> agg;
    std::optional<net::ScopedAggregator> scoped;
    if (cfg != nullptr) {
      agg.emplace(cluster_inst, *cfg);
      scoped.emplace(*agg);
    }
    QesResult r = run_grace_hash(cluster_inst, bds, ds.meta, query, options);
    if (final_flush != nullptr) {
      *final_flush = agg ? agg->flush_batches() : 1;
    }
    return r;
  }

  /// Extended gh_cost prediction at a given flush threshold.
  double model(double flush) const {
    CostParams p =
        CostParams::from(cluster, ds.stats, table1_schema(data)->record_size(),
                         table2_schema(data)->record_size(), 1.0);
    p.batch_bytes = static_cast<double>(options.batch_bytes);
    p.agg_flush_batches = flush;
    return gh_cost(p).total();
  }
};

net::AggregatorConfig fixed_config(std::size_t flush, double timeout = 0) {
  net::AggregatorConfig cfg;
  cfg.flush_batches = flush;
  // The sweep defaults to size/drain flushes only so frames fill to the
  // threshold (h1 batch inter-arrival here is above the default 1 ms
  // timeout); timeout rows show the latency-bounding trade-off instead.
  cfg.flush_timeout = timeout;
  return cfg;
}

int check_mode() {
  bool ok = true;

  CornerRig msg(kMessageBound);
  const QesResult base = msg.run(nullptr);
  net::AggregatorConfig cfg = fixed_config(16);
  const QesResult agg = msg.run(&cfg);
  if (agg.result_fingerprint != base.result_fingerprint ||
      agg.result_tuples != base.result_tuples) {
    std::printf("FAIL: aggregated GH fingerprint diverged\n");
    ok = false;
  }
  if (static_cast<double>(base.net_frames_sent) <
      8.0 * static_cast<double>(agg.net_frames_sent)) {
    std::printf("FAIL: frames %llu -> %llu, less than 8x reduction\n",
                (unsigned long long)base.net_frames_sent,
                (unsigned long long)agg.net_frames_sent);
    ok = false;
  }
  if (agg.elapsed > 0.85 * base.elapsed) {
    std::printf("FAIL: message-bound GH %.6fs not <= 0.85 x %.6fs\n",
                agg.elapsed, base.elapsed);
    ok = false;
  }

  // Bandwidth-bound corner runs the shipping config — timeout on. Holding
  // batches until a frame fills would trade away sender/receiver overlap
  // for frames that are free here; the timeout bounds that latency tax.
  CornerRig bw(kBandwidthBound);
  const QesResult bw_base = bw.run(nullptr);
  net::AggregatorConfig bw_cfg = fixed_config(16, 1e-3);
  const QesResult bw_agg = bw.run(&bw_cfg);
  if (bw_agg.result_fingerprint != bw_base.result_fingerprint) {
    std::printf("FAIL: bandwidth-bound fingerprint diverged\n");
    ok = false;
  }
  if (bw_agg.elapsed > 1.05 * bw_base.elapsed) {
    std::printf("FAIL: bandwidth-bound GH moved %.6fs -> %.6fs (> 5%%)\n",
                bw_base.elapsed, bw_agg.elapsed);
    ok = false;
  }

  std::printf(
      "%s: message-bound %.6f -> %.6f (%.1f%%, frames %llu -> %llu), "
      "bandwidth-bound %.6f -> %.6f\n",
      ok ? "PASS" : "FAIL", base.elapsed, agg.elapsed,
      100.0 * (1.0 - agg.elapsed / base.elapsed),
      (unsigned long long)base.net_frames_sent,
      (unsigned long long)agg.net_frames_sent, bw_base.elapsed,
      bw_agg.elapsed);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orv::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) return check_mode();
  }

  print_banner("Ablation: message aggregation",
               "per-destination frame building vs flush threshold");
  const std::string out_path = parse_out_path(argc, argv);
  SeriesJson series("ablation_aggregation");

  for (const Corner& corner : {kMessageBound, kBandwidthBound}) {
    CornerRig rig(corner);
    const QesResult base = rig.run(nullptr);
    std::printf("\n%s (gamma = %g s/frame): unaggregated GH %.6fs, "
                "%llu frames\n",
                corner.name, corner.gamma, base.elapsed,
                (unsigned long long)base.net_frames_sent);
    std::printf("%9s | %8s %8s | %8s %8s | %9s %6s\n", "flush", "GH sim",
                "gain", "frames", "msg/frm", "GH model", "fp==");

    auto emit = [&](const char* label, std::size_t flush_for_model,
                    bool adaptive, double timeout, const orv::QesResult& r,
                    std::size_t final_flush) {
      const bool same =
          r.result_fingerprint == base.result_fingerprint &&
          r.result_tuples == base.result_tuples;
      const double model = rig.model(static_cast<double>(flush_for_model));
      const double mpf =
          r.net_frames_sent > 0
              ? static_cast<double>(r.h1_messages_sent) /
                    static_cast<double>(r.net_frames_sent)
              : 0.0;
      std::printf("%9s | %8.5f %7.1f%% | %8llu %8.2f | %9.5f %6s\n", label,
                  r.elapsed, 100.0 * (1.0 - r.elapsed / base.elapsed),
                  (unsigned long long)r.net_frames_sent, mpf, model,
                  same ? "yes" : "NO!");
      series.add_row(orv::strformat(
          "{\"corner\":\"%s\",\"flush\":%zu,\"adaptive\":%s,\"timeout\":%g,"
          "\"gh\":%.6f,\"gh_model\":%.6f,\"frames\":%llu,\"messages\":%llu,"
          "\"final_flush\":%zu,\"fingerprint_match\":%s}",
          corner.name, flush_for_model, adaptive ? "true" : "false", timeout,
          r.elapsed, model, (unsigned long long)r.net_frames_sent,
          (unsigned long long)r.h1_messages_sent, final_flush,
          same ? "true" : "false"));
    };

    for (std::size_t flush : {1, 2, 4, 8, 16, 32, 64}) {
      net::AggregatorConfig cfg = fixed_config(flush);
      const orv::QesResult r = rig.run(&cfg);
      emit(std::to_string(flush).c_str(), flush, false, 0.0, r, flush);
    }
    {
      // The shipping default: size flush plus the 1 ms timeout bounding
      // how long a batch can sit in a half-full frame.
      net::AggregatorConfig cfg = fixed_config(16, 1e-3);
      const orv::QesResult r = rig.run(&cfg);
      emit("16+1ms", 16, false, 1e-3, r, 16);
    }
    net::AggregatorConfig adaptive;
    adaptive.adaptive = true;
    adaptive.flush_batches = 8;
    std::size_t final_flush = 0;
    const orv::QesResult r = rig.run(&adaptive, &final_flush);
    emit("adaptive", final_flush, true, adaptive.flush_timeout, r,
         final_flush);
  }

  std::printf("\nExpected shape: message-bound elapsed falls with the flush "
              "threshold and\nplateaus once gamma is amortized; "
              "bandwidth-bound stays flat; fingerprints\nnever change.\n\n");
  if (!out_path.empty() && !series.write(out_path)) return 1;
  return 0;
}
