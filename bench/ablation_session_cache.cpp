// Ablation: cross-query session caching (the paper's future-work
// "caching strategies"). A scientist's interactive session re-queries the
// same view with different predicates; warm per-node Caching Service
// instances eliminate transfers after the first query.

#include "bench_util.hpp"
#include "cache/caching_service.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Ablation", "cross-query session caching (IJ)");

  DatasetSpec data;
  data.grid = {64, 64, 64};
  data.part1 = {16, 16, 16};
  data.part2 = {16, 16, 16};
  data.num_storage_nodes = 5;
  ClusterSpec cspec;
  cspec.num_storage = 5;
  cspec.num_compute = 5;

  auto ds = generate_dataset(data);
  sim::Engine engine;
  Cluster cluster(engine, cspec);
  BdsService bds(cluster, ds.meta, ds.stores);

  std::vector<std::shared_ptr<CachingService>> caches;
  for (std::size_t j = 0; j < cspec.num_compute; ++j) {
    caches.push_back(std::make_shared<CachingService>(cluster.memory_bytes()));
  }
  QesOptions options;
  options.node_caches = &caches;

  struct Step {
    const char* label;
    std::vector<AttrRange> ranges;
  };
  const Step session[] = {
      {"full view (cold)", {}},
      {"full view (warm)", {}},
      {"x in [0,31]", {{"x", {0, 31}}}},
      {"x in [0,31], wp <= 0.5", {{"x", {0, 31}}, {"wp", {0.0, 0.5}}}},
      {"z in [32,63]", {{"z", {32, 63}}}},
  };

  for (const bool affinity : {false, true}) {
    options.assign = affinity ? ComponentAssign::CacheAffinity
                              : ComponentAssign::RoundRobin;
    for (auto& cache : caches) cache->clear();
    std::printf("-- component assignment: %s --\n",
                affinity ? "cache-affinity (extension)" : "round-robin");
    std::printf("%-26s | %8s %10s %10s %9s\n", "query", "time", "net bytes",
                "fetches", "hit rate");
    for (const auto& step : session) {
      JoinQuery query{data.table1_id, data.table2_id, {"x", "y", "z"},
                      step.ranges};
      const auto graph = ConnectivityGraph::build(
          ds.meta, query.left_table, query.right_table, query.join_attrs,
          query.ranges);
      const auto r =
          run_indexed_join(cluster, bds, ds.meta, graph, query, options);
      std::printf("%-26s | %7.3fs %10.0f %10llu %8.1f%%\n", step.label,
                  r.elapsed, r.network_bytes,
                  (unsigned long long)r.subtable_fetches,
                  100.0 * r.cache_stats.hit_rate());
    }
    std::printf("\n");
  }
  std::printf("Expected: the first query pays the full transfer; warm "
              "queries are served\nfrom the node caches. Round-robin over "
              "a range-pruned graph loses affinity\nand re-fetches; the "
              "cache-affinity assignment follows the warm caches.\n\n");
  return 0;
}
