// Microbenchmark of the R-tree backing the MetaData Service: bulk load,
// dynamic insert and range-query throughput over chunk-like boxes.

#include <benchmark/benchmark.h>

#include "common/prng.hpp"
#include "rtree/rtree.hpp"

namespace {

using namespace orv;

std::vector<std::pair<Rect, std::uint64_t>> grid_boxes(std::size_t per_dim) {
  std::vector<std::pair<Rect, std::uint64_t>> out;
  std::uint64_t id = 0;
  for (std::size_t z = 0; z < per_dim; ++z) {
    for (std::size_t y = 0; y < per_dim; ++y) {
      for (std::size_t x = 0; x < per_dim; ++x) {
        Rect r(3);
        r[0] = {16.0 * x, 16.0 * x + 15};
        r[1] = {16.0 * y, 16.0 * y + 15};
        r[2] = {16.0 * z, 16.0 * z + 15};
        out.emplace_back(std::move(r), id++);
      }
    }
  }
  return out;
}

void BM_RTreeBulkLoad(benchmark::State& state) {
  const auto boxes = grid_boxes(state.range(0));
  for (auto _ : state) {
    RTree tree(3);
    tree.bulk_load(boxes);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * boxes.size());
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(8)->Arg(16)->Arg(24);

void BM_RTreeDynamicInsert(benchmark::State& state) {
  const auto boxes = grid_boxes(state.range(0));
  for (auto _ : state) {
    RTree tree(3);
    for (const auto& [box, id] : boxes) tree.insert(box, id);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * boxes.size());
}
BENCHMARK(BM_RTreeDynamicInsert)->Arg(8)->Arg(16);

void BM_RTreeRangeQuery(benchmark::State& state) {
  RTree tree(3);
  tree.bulk_load(grid_boxes(16));
  Xoshiro256StarStar rng(3);
  std::size_t hits = 0;
  for (auto _ : state) {
    Rect q(3);
    const double x0 = rng.uniform(0, 200);
    const double y0 = rng.uniform(0, 200);
    const double z0 = rng.uniform(0, 200);
    q[0] = {x0, x0 + 40};
    q[1] = {y0, y0 + 40};
    q[2] = {z0, z0 + 40};
    tree.query(q, [&](const Rect&, std::uint64_t) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeRangeQuery);

}  // namespace

BENCHMARK_MAIN();
