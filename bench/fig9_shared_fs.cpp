// Figure 9: shared filesystem (single NFS server serves all I/O; compute
// nodes have no local disks).
//
// Expected shape: GH suffers far more than IJ — its bucket writes and
// reads all funnel through the one server — so much that *adding compute
// nodes makes GH worse* (more concurrent bucket traffic at the server),
// while IJ keeps improving. IJ is the clear choice on shared storage.

#include "bench_util.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Figure 9", "single shared NFS server for all I/O");

  std::printf("%6s | %8s %8s | %8s %8s\n", "n_j", "IJ sim", "GH sim",
              "IJ model", "GH model");
  // Up to 10 nodes total, as on the paper's testbed.
  for (std::size_t nj : {1, 2, 3, 4, 5}) {
    Scenario sc;
    sc.data.grid = {48, 48, 48};
    sc.data.part1 = {12, 12, 12};
    sc.data.part2 = {12, 12, 12};
    sc.cluster.num_storage = 5;   // five BDS endpoints, one physical server
    sc.cluster.num_compute = nj;
    sc.cluster.shared_filesystem = true;
    sc.options.batch_bytes = 16 * 1024;  // finer interleaving granularity
    const auto r = run_scenario(sc);
    std::printf("%6zu | %8.3f %8.3f | %8.3f %8.3f\n", nj, r.sim_ij.elapsed,
                r.sim_gh.elapsed, r.model_ij.total(), r.model_gh.total());
  }
  std::printf("\nExpected paper shape: GH considerably worse than IJ; GH "
              "degrades (or at\nbest stagnates) as compute nodes are added, "
              "since only GH writes buckets\nthrough the shared server. IJ "
              "is definitely the better choice here.\n\n");
  return 0;
}
