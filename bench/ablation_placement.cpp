// Ablation: chunk placement across storage nodes.
//
// Paper claim (Section 4.2): "The Grace Hash algorithm is insensitive to
// the way data is partitioned across the storage nodes" while the Indexed
// Join "is found to be sensitive to the way datasets are partitioned and
// was able to benefit from it in certain cases". Here both algorithms run
// over the same logical dataset placed block-cyclically (paper), in
// contiguous blocks, and randomly.

#include "bench_util.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Ablation", "chunk placement across storage nodes");

  struct Case {
    const char* name;
    Placement placement;
  };
  const Case cases[] = {
      {"block-cyclic (paper)", Placement::BlockCyclic},
      {"blocked (contiguous)", Placement::Blocked},
      {"random", Placement::Random},
  };

  std::printf("%-22s | %8s %8s\n", "placement", "IJ sim", "GH sim");
  double gh_min = 1e30;
  double gh_max = 0;
  double ij_min = 1e30;
  double ij_max = 0;
  for (const auto& c : cases) {
    Scenario sc;
    sc.data.grid = {64, 64, 64};
    sc.data.part1 = {16, 16, 16};
    sc.data.part2 = {16, 16, 16};
    sc.data.placement = c.placement;
    sc.cluster.num_storage = 5;
    sc.cluster.num_compute = 5;
    const auto r = run_scenario(sc);
    std::printf("%-22s | %8.3f %8.3f\n", c.name, r.sim_ij.elapsed,
                r.sim_gh.elapsed);
    gh_min = std::min(gh_min, r.sim_gh.elapsed);
    gh_max = std::max(gh_max, r.sim_gh.elapsed);
    ij_min = std::min(ij_min, r.sim_ij.elapsed);
    ij_max = std::max(ij_max, r.sim_ij.elapsed);
  }
  std::printf("\nspread: IJ %.1f%%, GH %.1f%%\n",
              100.0 * (ij_max - ij_min) / ij_min,
              100.0 * (gh_max - gh_min) / gh_min);
  std::printf("Expected (paper Section 4.2 / conclusions): GH is nearly "
              "insensitive to\nplacement; IJ's time moves with placement "
              "because its fetch pattern follows\nthe connectivity graph "
              "while GH streams every chunk exactly once.\n\n");
  return 0;
}
