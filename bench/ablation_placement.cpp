// Ablation: chunk placement across storage nodes.
//
// Paper claim (Section 4.2): "The Grace Hash algorithm is insensitive to
// the way data is partitioned across the storage nodes" while the Indexed
// Join "is found to be sensitive to the way datasets are partitioned and
// was able to benefit from it in certain cases". Here both algorithms run
// over the same logical dataset placed block-cyclically (paper), in
// contiguous blocks, randomly, and by min-cut graph partitioning
// (src/place) — first on the paper's split cluster, then on a colocated
// cluster where placement-affinity scheduling turns co-located chunk
// pairs into local-bus transfers that never cross the switch.
//
//   --out <path.json>  writes the colocated series for the bench_compare
//                      regression gate (BENCH_placement.json).
//   --check            CI perf-smoke mode: asserts that on the colocated
//                      cluster graph-partitioned placement beats
//                      block-cyclic by >= 10% IJ time and >= 25% fewer
//                      cross-switch bytes, GH stays within 2%, and every
//                      placement yields the same result fingerprint.

#include <cstring>

#include "bench_util.hpp"

namespace {

struct Case {
  const char* name;
  orv::Placement placement;
};

constexpr Case kCases[] = {
    {"block-cyclic (paper)", orv::Placement::BlockCyclic},
    {"blocked (contiguous)", orv::Placement::Blocked},
    {"random", orv::Placement::Random},
    {"graph-partitioned", orv::Placement::GraphPartitioned},
};

orv::bench::Scenario placement_scenario(orv::Placement placement,
                                        bool colocated) {
  orv::bench::Scenario sc;
  // Asymmetric partitions (a = 1, b = 8 per component): each T1 chunk
  // joins 8 smaller T2 chunks, so block-cyclic scatters a component's
  // chunks over the nodes while graph partitioning keeps it whole. With
  // p = q every placement is trivially local (pair i lives with chunk i)
  // and the ablation would show nothing.
  sc.data.grid = {64, 64, 64};
  sc.data.part1 = {16, 16, 16};
  sc.data.part2 = {8, 8, 8};
  sc.data.placement = placement;
  sc.cluster.num_storage = 5;
  sc.cluster.num_compute = 5;
  if (colocated) {
    sc.cluster.colocated = true;
    sc.options.assign = orv::ComponentAssign::PlacementAffinity;
  }
  return sc;
}

int check_mode() {
  using namespace orv;
  using namespace orv::bench;
  const auto base =
      run_scenario(placement_scenario(Placement::BlockCyclic, true));
  const auto gp =
      run_scenario(placement_scenario(Placement::GraphPartitioned, true));

  bool ok = true;
  if (gp.sim_ij.result_fingerprint != base.sim_ij.result_fingerprint ||
      gp.sim_gh.result_fingerprint != base.sim_gh.result_fingerprint ||
      gp.sim_ij.result_fingerprint != gp.sim_gh.result_fingerprint) {
    std::printf("FAIL: result fingerprint moved with placement\n");
    ok = false;
  }
  if (gp.sim_ij.elapsed > 0.9 * base.sim_ij.elapsed) {
    std::printf("FAIL: graph-partitioned IJ %.6fs not <= 0.9 x "
                "block-cyclic %.6fs\n",
                gp.sim_ij.elapsed, base.sim_ij.elapsed);
    ok = false;
  }
  if (gp.sim_ij.cross_switch_bytes > 0.75 * base.sim_ij.cross_switch_bytes) {
    std::printf("FAIL: cross-switch bytes %.0f not <= 0.75 x %.0f\n",
                gp.sim_ij.cross_switch_bytes, base.sim_ij.cross_switch_bytes);
    ok = false;
  }
  const double gh_shift =
      std::abs(gp.sim_gh.elapsed - base.sim_gh.elapsed) / base.sim_gh.elapsed;
  if (gh_shift > 0.02) {
    std::printf("FAIL: GH moved %.1f%% with placement (> 2%%)\n",
                100.0 * gh_shift);
    ok = false;
  }
  std::printf("%s: IJ %.6f -> %.6f (%.1f%%), switch bytes %.3g -> %.3g "
              "(%.1f%%), GH shift %.2f%%\n",
              ok ? "PASS" : "FAIL", base.sim_ij.elapsed, gp.sim_ij.elapsed,
              100.0 * (1.0 - gp.sim_ij.elapsed / base.sim_ij.elapsed),
              base.sim_ij.cross_switch_bytes, gp.sim_ij.cross_switch_bytes,
              100.0 * (1.0 - gp.sim_ij.cross_switch_bytes /
                                 base.sim_ij.cross_switch_bytes),
              100.0 * gh_shift);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orv;
  using namespace orv::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) return check_mode();
  }

  print_banner("Ablation", "chunk placement across storage nodes");
  const std::string out_path = parse_out_path(argc, argv);
  SeriesJson series("ablation_placement");

  std::printf("split cluster (paper): storage and compute on separate "
              "boxes, every fetch\ncrosses the switch.\n\n");
  std::printf("%-22s | %8s %8s\n", "placement", "IJ sim", "GH sim");
  double gh_min = 1e30, gh_max = 0, ij_min = 1e30, ij_max = 0;
  for (const auto& c : kCases) {
    const auto r = run_scenario(placement_scenario(c.placement, false));
    std::printf("%-22s | %8.3f %8.3f\n", c.name, r.sim_ij.elapsed,
                r.sim_gh.elapsed);
    gh_min = std::min(gh_min, r.sim_gh.elapsed);
    gh_max = std::max(gh_max, r.sim_gh.elapsed);
    ij_min = std::min(ij_min, r.sim_ij.elapsed);
    ij_max = std::max(ij_max, r.sim_ij.elapsed);
  }
  std::printf("\nspread: IJ %.1f%%, GH %.1f%%\n\n",
              100.0 * (ij_max - ij_min) / ij_min,
              100.0 * (gh_max - gh_min) / gh_min);

  std::printf("colocated cluster: compute node j shares a box with storage "
              "node j mod n_s;\nIJ components are scheduled with "
              "PlacementAffinity, so bytes of co-located\nchunks ride the "
              "local bus instead of NIC + switch + NIC.\n\n");
  std::printf("%-22s | %8s %8s %8s | %9s %9s %7s\n", "placement", "IJ sim",
              "IJ model", "GH sim", "switch", "local", "f_local");
  for (const auto& c : kCases) {
    const auto r = run_scenario(placement_scenario(c.placement, true));
    const double moved =
        r.sim_ij.cross_switch_bytes + r.sim_ij.local_transfer_bytes;
    const double f_local =
        moved > 0 ? r.sim_ij.local_transfer_bytes / moved : 0.0;
    std::printf("%-22s | %8.3f %8.3f %8.3f | %9.3g %9.3g %7.3f\n", c.name,
                r.sim_ij.elapsed, r.model_ij.total(), r.sim_gh.elapsed,
                r.sim_ij.cross_switch_bytes, r.sim_ij.local_transfer_bytes,
                f_local);
    series.add_row(strformat(
        "{\"placement\":\"%s\",\"ij\":%.6f,\"gh\":%.6f,\"ij_model\":%.6f,"
        "\"cross_switch_bytes\":%.0f,\"local_bytes\":%.0f,"
        "\"local_fraction\":%.4f,\"fingerprint\":%llu}",
        placement_name(c.placement), r.sim_ij.elapsed, r.sim_gh.elapsed,
        r.model_ij.total(), r.sim_ij.cross_switch_bytes,
        r.sim_ij.local_transfer_bytes, f_local,
        (unsigned long long)r.sim_ij.result_fingerprint));
  }
  std::printf("\nExpected shape: GH is nearly insensitive everywhere (its "
              "shuffle always crosses\nthe switch); on the colocated "
              "cluster graph-partitioned placement pushes the\nlocal "
              "fraction toward 1, cutting IJ's cross-switch bytes and its "
              "transfer-bound\ntime, and the locality-aware model tracks "
              "the drop.\n\n");
  if (!out_path.empty() && !series.write(out_path)) return 1;
  return 0;
}
