// Figure 6: execution time vs the total number of tuples T.
//
// Paper setup: grid size swept (the paper reaches 2 billion tuples on its
// testbed; the simulation executes the real joins, so the swept range is
// smaller and the cost models extrapolate the paper-scale points).
// Expected shape: both algorithms scale linearly in T and the absolute
// IJ-GH difference grows linearly too.

#include "bench_util.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Figure 6", "varying the number of tuples");

  std::printf("-- simulated (real joins executed) --\n");
  std::printf("%12s | %8s %8s %8s | %8s %8s\n", "T", "IJ sim", "GH sim",
              "gap", "IJ model", "GH model");
  Scenario base;
  base.data.part1 = {16, 8, 8};   // cross partitions: n_e*c_S = 2T
  base.data.part2 = {8, 16, 8};
  base.cluster.num_storage = 5;
  base.cluster.num_compute = 5;
  for (std::uint64_t g : {32, 48, 64, 96, 128}) {
    Scenario sc = base;
    sc.data.grid = {g, g, g};
    const auto r = run_scenario(sc);
    std::printf("%12llu | %8.3f %8.3f %8.3f | %8.3f %8.3f\n",
                (unsigned long long)r.stats.T, r.sim_ij.elapsed,
                r.sim_gh.elapsed, r.sim_gh.elapsed - r.sim_ij.elapsed,
                r.model_ij.total(), r.model_gh.total());
  }

  std::printf("\n-- cost-model extrapolation to the paper's scale --\n");
  std::printf("%12s | %10s %10s %10s\n", "T", "IJ model", "GH model", "gap");
  for (std::uint64_t g : {256, 512, 1024, 1290}) {
    DatasetSpec spec;
    spec.grid = {g, g, g};  // 1290^3 ~ 2.1e9 tuples (paper's maximum)
    spec.part1 = {16, 8, 8};
    spec.part2 = {8, 16, 8};
    // Closed-form stats only; no data generated at this scale.
    DatasetSpec rounded = spec;
    rounded.grid = {g - g % 16, g - g % 16, g - g % 16};
    const auto stats = analyze(rounded);
    ClusterSpec cluster;
    cluster.num_storage = 5;
    cluster.num_compute = 5;
    const auto params = CostParams::from(cluster, stats, 16, 16);
    const auto mij = ij_cost(params);
    const auto mgh = gh_cost(params);
    std::printf("%12llu | %10.1f %10.1f %10.1f\n",
                (unsigned long long)stats.T, mij.total(), mgh.total(),
                mgh.total() - mij.total());
  }
  std::printf("\nExpected paper shape: linear scaling for both algorithms; "
              "the difference\ngrows linearly, so the planner's choice "
              "matters most for the largest tables.\n\n");
  return 0;
}
