#pragma once

// Shared harness for the per-figure benchmarks: builds a dataset, runs
// both QES algorithms on a fresh simulated cluster, evaluates the cost
// models, and prints paper-style series rows.

#include <cstdio>
#include <string>

#include "cost/cost_model.hpp"
#include "datagen/generator.hpp"
#include "graph/connectivity.hpp"
#include "qes/qes.hpp"
#include "qps/planner.hpp"
#include "sim/engine.hpp"

namespace orv::bench {

struct Scenario {
  DatasetSpec data;
  ClusterSpec cluster;
  /// Fig. 8 knob: repeat hash build/probe k times (k = 2 models half the
  /// computing power; k = 0.5 models double).
  double cpu_work_factor = 1.0;
  QesOptions options;
};

struct ScenarioResult {
  ConnectivityStats stats;
  CostParams params;
  CostBreakdown model_ij;
  CostBreakdown model_gh;
  QesResult sim_ij;
  QesResult sim_gh;
  Algorithm planned = Algorithm::IndexedJoin;

  double ne_cs() const {
    return static_cast<double>(stats.num_edges) *
           static_cast<double>(stats.c_S);
  }
};

/// Runs both algorithms (each on a fresh engine+cluster so resource stats
/// and virtual clocks do not interact) and evaluates the models.
inline ScenarioResult run_scenario(Scenario sc) {
  sc.data.num_storage_nodes = sc.cluster.num_storage;
  auto ds = generate_dataset(sc.data);

  ScenarioResult out;
  out.stats = ds.stats;
  out.params = CostParams::from(
      sc.cluster, ds.stats, table1_schema(sc.data)->record_size(),
      table2_schema(sc.data)->record_size(), 1.0 / sc.cpu_work_factor);
  out.model_ij = ij_cost(out.params);
  out.model_gh = gh_cost(out.params);
  out.planned = out.model_ij.total() <= out.model_gh.total()
                    ? Algorithm::IndexedJoin
                    : Algorithm::GraceHash;

  JoinQuery query{sc.data.table1_id, sc.data.table2_id, {"x", "y", "z"}, {}};
  const auto graph = ConnectivityGraph::build(
      ds.meta, query.left_table, query.right_table, query.join_attrs);

  QesOptions options = sc.options;
  options.cpu_work_factor = sc.cpu_work_factor;
  {
    sim::Engine engine;
    Cluster cluster(engine, sc.cluster);
    BdsService bds(cluster, ds.meta, ds.stores);
    out.sim_ij = run_indexed_join(cluster, bds, ds.meta, graph, query,
                                  options);
  }
  {
    sim::Engine engine;
    Cluster cluster(engine, sc.cluster);
    BdsService bds(cluster, ds.meta, ds.stores);
    out.sim_gh = run_grace_hash(cluster, bds, ds.meta, query, options);
  }
  return out;
}

inline void print_banner(const char* figure, const char* description) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(times are simulated seconds on the paper's 2006 hardware "
              "profile)\n");
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace orv::bench
