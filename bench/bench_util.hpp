#pragma once

// Shared harness for the per-figure benchmarks: builds a dataset, runs
// both QES algorithms on a fresh simulated cluster, evaluates the cost
// models, and prints paper-style series rows.
//
// Profiling: when the ORV_PROFILE environment variable names a file, each
// scenario run installs an observability context (virtual-time clock on
// the scenario's engine) and appends a per-query execution profile —
// stage-time breakdown, counters, and the PlanValidation record of
// predicted vs. measured cost — to that file as {"profiles": [...]}.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.hpp"
#include "cost/cost_model.hpp"
#include "datagen/generator.hpp"
#include "graph/connectivity.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/prometheus.hpp"
#include "obs/sim_clock.hpp"
#include "obs/trace.hpp"
#include "place/placement.hpp"
#include "qes/qes.hpp"
#include "qps/planner.hpp"
#include "sim/engine.hpp"

namespace orv::bench {

struct Scenario {
  DatasetSpec data;
  ClusterSpec cluster;
  /// Fig. 8 knob: repeat hash build/probe k times (k = 2 models half the
  /// computing power; k = 0.5 models double).
  double cpu_work_factor = 1.0;
  QesOptions options;
};

struct ScenarioResult {
  ConnectivityStats stats;
  CostParams params;
  CostBreakdown model_ij;
  CostBreakdown model_gh;
  QesResult sim_ij;
  QesResult sim_gh;
  Algorithm planned = Algorithm::IndexedJoin;

  /// Bottleneck diagnoses, filled on instrumented runs only (ORV_PROFILE /
  /// ORV_TRACE): uninstrumented runs assemble no trace DAG to walk.
  bool diag_valid = false;
  obs::Diagnosis diag_ij;
  obs::Diagnosis diag_gh;

  double ne_cs() const {
    return static_cast<double>(stats.num_edges) *
           static_cast<double>(stats.c_S);
  }

  /// Model accuracy per algorithm (simulated / predicted); computable with
  /// or without instrumentation, so benches can always emit it.
  double ij_error_ratio() const {
    return model_ij.total() > 0 ? sim_ij.elapsed / model_ij.total() : 0.0;
  }
  double gh_error_ratio() const {
    return model_gh.total() > 0 ? sim_gh.elapsed / model_gh.total() : 0.0;
  }
};

/// Accumulates per-query execution profiles and rewrites the ORV_PROFILE
/// file after each addition, so a partially completed bench still leaves
/// valid JSON behind.
class ProfileReport {
 public:
  static ProfileReport& instance() {
    static ProfileReport report;
    return report;
  }

  bool enabled() const { return !path_.empty(); }

  void set_figure(std::string figure) { figure_ = std::move(figure); }

  /// One label per scenario; the two algorithm runs share it.
  std::string next_label() {
    return strformat("%s#%zu", figure_.c_str(), seq_++);
  }

  void add(obs::ExecutionProfile profile) {
    profiles_.push_back(std::move(profile));
    write();
  }

 private:
  ProfileReport() {
    if (const char* p = std::getenv("ORV_PROFILE")) path_ = p;
  }

  void write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "ORV_PROFILE: cannot open %s\n", path_.c_str());
      return;
    }
    std::string out = "{\"schema_version\":" +
                      std::to_string(obs::kObsSchemaVersion) +
                      ",\"profiles\":[";
    for (std::size_t i = 0; i < profiles_.size(); ++i) {
      if (i) out += ',';
      out += profiles_[i].to_json();
    }
    out += "]}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }

  std::string path_;
  std::string figure_ = "bench";
  std::size_t seq_ = 0;
  std::vector<obs::ExecutionProfile> profiles_;
};

/// Accumulates one Chrome trace-event file across every query of a bench
/// run when ORV_TRACE names a file. Each query becomes one "process" in
/// the trace (one track per simulated node inside it), so the file opens
/// directly in Perfetto / chrome://tracing. Rewritten after each query so
/// a partially completed bench still leaves valid JSON behind.
class TraceReport {
 public:
  static TraceReport& instance() {
    static TraceReport report;
    return report;
  }

  bool enabled() const { return !path_.empty(); }

  /// Virtual-time sampling interval for the occupancy time series
  /// (ORV_SAMPLE_INTERVAL, simulated seconds; 0 disables sampling).
  double sample_interval() const { return sample_interval_; }

  void add(std::string label, std::vector<obs::SpanRecord> spans,
           std::vector<obs::TimeSeries> series) {
    queries_.push_back(obs::ChromeTraceQuery{
        std::move(label), std::move(spans), std::move(series)});
    write();
  }

 private:
  TraceReport() {
    if (const char* p = std::getenv("ORV_TRACE")) path_ = p;
    if (const char* s = std::getenv("ORV_SAMPLE_INTERVAL")) {
      sample_interval_ = std::atof(s);
    }
  }

  void write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "ORV_TRACE: cannot open %s\n", path_.c_str());
      return;
    }
    const std::string out = obs::chrome_trace_json(queries_);
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }

  std::string path_;
  // Default chosen so the sub-second figure queries still get tens of
  // points per counter track; only read when ORV_TRACE is set.
  double sample_interval_ = 0.01;
  std::vector<obs::ChromeTraceQuery> queries_;
};

/// ORV_DIAG=1 prints each instrumented query's full diagnosis (findings,
/// confidences, knob suggestions) to stdout.
inline bool diag_to_stdout() {
  static const bool enabled = std::getenv("ORV_DIAG") != nullptr;
  return enabled;
}

inline void print_diagnosis(const obs::Diagnosis& d) {
  std::printf("[diag] %s/%s: %s\n", d.query.c_str(), d.algorithm.c_str(),
              d.to_string().c_str());
  for (const auto& f : d.findings) {
    std::printf("  - %s (conf %.2f): %s\n      knob: %s\n", f.kind.c_str(),
                f.confidence, f.detail.c_str(), f.suggestion.c_str());
  }
}

namespace detail {

/// Copies the executor's accounting into the diagnosis engine's input.
inline obs::DiagnosisInput make_diag_input(const std::string& label,
                                           Algorithm algorithm,
                                           const QesResult& result,
                                           bool placement_affinity) {
  obs::DiagnosisInput di;
  di.query = label;
  di.algorithm = algorithm_name(algorithm);
  di.elapsed = result.elapsed;
  for (const auto& nw : result.node_work) {
    di.nodes.push_back({nw.node, nw.busy_seconds, nw.items, nw.bytes});
  }
  di.fetch_retries = result.fetch_retries;
  di.pairs_reassigned = result.pairs_reassigned;
  di.rows_repartitioned = result.rows_repartitioned;
  di.nodes_lost = result.compute_nodes_lost;
  di.degraded = result.degraded;
  di.cache_hits = result.cache_stats.hits;
  di.cache_misses = result.cache_stats.misses;
  di.cache_evictions = result.cache_stats.evictions;
  di.cache_puts = result.cache_stats.puts;
  di.prefetch_issued = result.prefetch_issued;
  di.prefetch_wasted = result.prefetch_wasted;
  di.placement_affinity = placement_affinity;
  return di;
}

/// Runs one algorithm under a freshly installed obs context (virtual-time
/// clock) and appends its execution profile + plan validation. When
/// `diag_out` is non-null it receives the run's bottleneck diagnosis.
template <typename RunFn>
QesResult run_profiled(const sim::Engine& engine, const std::string& label,
                       Algorithm algorithm, const ScenarioResult& so_far,
                       RunFn&& run, bool placement_affinity = false,
                       obs::Diagnosis* diag_out = nullptr) {
  obs::SimClock clock(engine);
  obs::ObsContext ctx(&clock);
  const bool tracing = TraceReport::instance().enabled();
  if (tracing) {
    ctx.sample_interval = TraceReport::instance().sample_interval();
  }
  QesResult result;
  obs::Diagnosis diag;
  {
    obs::ScopedInstall install(ctx);
    result = run();
    obs::PlanValidation pv;
    pv.query = label;
    pv.chosen = algorithm_name(so_far.planned);
    pv.executed = algorithm_name(algorithm);
    pv.predicted_ij = so_far.model_ij.total();
    pv.predicted_gh = so_far.model_gh.total();
    pv.predicted = algorithm == Algorithm::IndexedJoin
                       ? so_far.model_ij.total()
                       : so_far.model_gh.total();
    pv.measured = result.elapsed;
    ctx.add_plan_validation(std::move(pv));

    // Critical-path stage attribution, cross-checked against the model's
    // per-stage terms: transfer maps to the network stage, the GH bucket
    // write to spill, the bucket read-back to disk. What the model hides
    // via `overlap` the trace shows as genuine off-critical-path time, so
    // the per-stage ratios stay meaningful for pipelined runs too.
    const auto dag = obs::TraceDag::assemble(ctx.tracer.snapshot());
    const char* root_name =
        algorithm == Algorithm::IndexedJoin ? "ij.query" : "gh.query";
    obs::SpanId root;
    for (const auto& s : dag.spans()) {
      if (s.name == root_name) root = s.id;
    }
    const obs::CriticalPath cp = obs::critical_path(dag, root);
    {
      obs::DiagnosisInput di =
          make_diag_input(label, algorithm, result, placement_affinity);
      di.path = &cp;
      di.series = ctx.time_series();
      diag = obs::diagnose(di);
      if (diag_out != nullptr) *diag_out = diag;
      if (diag_to_stdout()) print_diagnosis(diag);
    }
    if (!cp.segments.empty()) {
      const CostBreakdown& model = algorithm == Algorithm::IndexedJoin
                                       ? so_far.model_ij
                                       : so_far.model_gh;
      std::vector<obs::StageAccuracy> stages;
      stages.push_back({"network", model.transfer,
                        cp.stage_seconds(obs::Stage::Network)});
      stages.push_back(
          {"disk", model.read, cp.stage_seconds(obs::Stage::Disk)});
      stages.push_back(
          {"spill", model.write, cp.stage_seconds(obs::Stage::Spill)});
      stages.push_back({"cpu", model.cpu(),
                        cp.stage_seconds(obs::Stage::Cpu)});
      stages.push_back(
          {"cache_wait", 0, cp.stage_seconds(obs::Stage::CacheWait)});
      stages.push_back({"other", 0, cp.stage_seconds(obs::Stage::Other)});
      ctx.set_last_plan_stages(std::move(stages));
    }
  }
  if (ProfileReport::instance().enabled()) {
    obs::ExecutionProfile profile = obs::build_profile(
        ctx, label, algorithm_name(algorithm), result.elapsed);
    profile.has_diagnosis = true;
    profile.diagnosis = diag;
    ProfileReport::instance().add(std::move(profile));
  }
  if (tracing) {
    TraceReport::instance().add(
        label + "/" + algorithm_name(algorithm), ctx.tracer.snapshot(),
        ctx.time_series());
  }
  // ORV_PROM=<file>: Prometheus text exposition of the query's registry
  // snapshot, rewritten per query (a scraper pulls the current state, so
  // last-writer-wins matches the scrape model).
  if (const char* prom = std::getenv("ORV_PROM")) {
    if (std::FILE* f = std::fopen(prom, "w")) {
      const std::string text = obs::prometheus_text(ctx.registry.snapshot());
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "ORV_PROM: cannot open %s\n", prom);
    }
  }
  return result;
}

}  // namespace detail

/// Runs both algorithms (each on a fresh engine+cluster so resource stats
/// and virtual clocks do not interact) and evaluates the models.
inline ScenarioResult run_scenario(Scenario sc) {
  sc.data.num_storage_nodes = sc.cluster.num_storage;
  auto ds = generate_dataset(sc.data);

  ScenarioResult out;
  out.stats = ds.stats;
  out.params = CostParams::from(
      sc.cluster, ds.stats, table1_schema(sc.data)->record_size(),
      table2_schema(sc.data)->record_size(), 1.0 / sc.cpu_work_factor);
  out.params.batch_bytes = static_cast<double>(sc.options.batch_bytes);
  out.params.bucket_pair_bytes =
      static_cast<double>(sc.options.bucket_pair_bytes);
  out.params.prefetch_lookahead =
      static_cast<double>(sc.options.prefetch_lookahead);
  // Pipelined execution gets the matching max-of-stages models, so the
  // PlanValidation error the profile records stays meaningful.
  out.model_ij = sc.options.prefetch_lookahead > 0
                     ? ij_cost_pipelined(out.params)
                     : ij_cost(out.params);
  out.model_gh = sc.options.gh_double_buffer ? gh_cost_pipelined(out.params)
                                             : gh_cost(out.params);
  out.planned = out.model_ij.total() <= out.model_gh.total()
                    ? Algorithm::IndexedJoin
                    : Algorithm::GraceHash;

  JoinQuery query{sc.data.table1_id, sc.data.table2_id, {"x", "y", "z"}, {}};
  const auto graph = ConnectivityGraph::build(
      ds.meta, query.left_table, query.right_table, query.join_attrs);

  if (sc.cluster.colocated &&
      sc.options.assign == ComponentAssign::PlacementAffinity) {
    // Locality-aware model refinement (mirrors QueryPlanner::plan): fold
    // the predicted schedule's node-local byte fraction into IJ transfer.
    const Schedule predicted = make_schedule_placement_affinity(
        graph, sc.cluster.num_compute, ds.meta, sc.cluster.num_storage,
        sc.options.pair_order, sc.options.seed);
    out.params.local_fraction =
        schedule_local_fraction(predicted, ds.meta, sc.cluster.num_storage);
    out.model_ij = sc.options.prefetch_lookahead > 0
                       ? ij_cost_pipelined(out.params)
                       : ij_cost(out.params);
    out.planned = out.model_ij.total() <= out.model_gh.total()
                      ? Algorithm::IndexedJoin
                      : Algorithm::GraceHash;
  }

  QesOptions options = sc.options;
  options.cpu_work_factor = sc.cpu_work_factor;

  // Either sink engages the instrumented path: ORV_PROFILE wants the
  // per-stage profile, ORV_TRACE wants the span snapshot + time series.
  const bool instrumented = ProfileReport::instance().enabled() ||
                            TraceReport::instance().enabled();
  const bool affinity =
      sc.options.assign == ComponentAssign::PlacementAffinity;
  const std::string label =
      instrumented ? ProfileReport::instance().next_label() : std::string();
  {
    sim::Engine engine;
    Cluster cluster(engine, sc.cluster);
    BdsService bds(cluster, ds.meta, ds.stores);
    auto run = [&] {
      return run_indexed_join(cluster, bds, ds.meta, graph, query, options);
    };
    out.sim_ij = instrumented
                     ? detail::run_profiled(engine, label,
                                            Algorithm::IndexedJoin, out, run,
                                            affinity, &out.diag_ij)
                     : run();
  }
  {
    sim::Engine engine;
    Cluster cluster(engine, sc.cluster);
    BdsService bds(cluster, ds.meta, ds.stores);
    auto run = [&] {
      return run_grace_hash(cluster, bds, ds.meta, query, options);
    };
    out.sim_gh = instrumented
                     ? detail::run_profiled(engine, label,
                                            Algorithm::GraceHash, out, run,
                                            affinity, &out.diag_gh)
                     : run();
  }
  out.diag_valid = instrumented;
  return out;
}

/// Serial-vs-pipelined series emitter: each fig bench that supports it
/// accepts `--out <path.json>` and writes {"figure":..., "rows":[...]} so
/// the repo can commit reference BENCH_*.json snapshots.
class SeriesJson {
 public:
  explicit SeriesJson(std::string figure) : figure_(std::move(figure)) {}

  void add_row(std::string row_json) { rows_.push_back(std::move(row_json)); }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::string out = "{\"figure\":\"" + figure_ + "\",\"rows\":[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += "  " + rows_[i];
      if (i + 1 < rows_.size()) out += ',';
      out += '\n';
    }
    out += "]}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  std::string figure_;
  std::vector<std::string> rows_;
};

/// Parses the optional `--out <path>` argument shared by the fig benches.
inline std::string parse_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") return argv[i + 1];
  }
  return {};
}

/// The standard pipelined configuration the serial-vs-pipelined series
/// compare against: bounded prefetch in IJ, double-buffered spills in GH.
inline QesOptions pipelined_options() {
  QesOptions o;
  o.prefetch_lookahead = 4;
  o.gh_double_buffer = true;
  return o;
}

inline void print_banner(const char* figure, const char* description) {
  ProfileReport::instance().set_figure(figure);
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(times are simulated seconds on the paper's 2006 hardware "
              "profile)\n");
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace orv::bench
