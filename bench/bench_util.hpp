#pragma once

// Shared harness for the per-figure benchmarks: builds a dataset, runs
// both QES algorithms on a fresh simulated cluster, evaluates the cost
// models, and prints paper-style series rows.
//
// Profiling: when the ORV_PROFILE environment variable names a file, each
// scenario run installs an observability context (virtual-time clock on
// the scenario's engine) and appends a per-query execution profile —
// stage-time breakdown, counters, and the PlanValidation record of
// predicted vs. measured cost — to that file as {"profiles": [...]}.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.hpp"
#include "cost/cost_model.hpp"
#include "datagen/generator.hpp"
#include "graph/connectivity.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/sim_clock.hpp"
#include "qes/qes.hpp"
#include "qps/planner.hpp"
#include "sim/engine.hpp"

namespace orv::bench {

struct Scenario {
  DatasetSpec data;
  ClusterSpec cluster;
  /// Fig. 8 knob: repeat hash build/probe k times (k = 2 models half the
  /// computing power; k = 0.5 models double).
  double cpu_work_factor = 1.0;
  QesOptions options;
};

struct ScenarioResult {
  ConnectivityStats stats;
  CostParams params;
  CostBreakdown model_ij;
  CostBreakdown model_gh;
  QesResult sim_ij;
  QesResult sim_gh;
  Algorithm planned = Algorithm::IndexedJoin;

  double ne_cs() const {
    return static_cast<double>(stats.num_edges) *
           static_cast<double>(stats.c_S);
  }
};

/// Accumulates per-query execution profiles and rewrites the ORV_PROFILE
/// file after each addition, so a partially completed bench still leaves
/// valid JSON behind.
class ProfileReport {
 public:
  static ProfileReport& instance() {
    static ProfileReport report;
    return report;
  }

  bool enabled() const { return !path_.empty(); }

  void set_figure(std::string figure) { figure_ = std::move(figure); }

  /// One label per scenario; the two algorithm runs share it.
  std::string next_label() {
    return strformat("%s#%zu", figure_.c_str(), seq_++);
  }

  void add(obs::ExecutionProfile profile) {
    profiles_.push_back(std::move(profile));
    write();
  }

 private:
  ProfileReport() {
    if (const char* p = std::getenv("ORV_PROFILE")) path_ = p;
  }

  void write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "ORV_PROFILE: cannot open %s\n", path_.c_str());
      return;
    }
    std::string out = "{\"profiles\":[";
    for (std::size_t i = 0; i < profiles_.size(); ++i) {
      if (i) out += ',';
      out += profiles_[i].to_json();
    }
    out += "]}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }

  std::string path_;
  std::string figure_ = "bench";
  std::size_t seq_ = 0;
  std::vector<obs::ExecutionProfile> profiles_;
};

namespace detail {

/// Runs one algorithm under a freshly installed obs context (virtual-time
/// clock) and appends its execution profile + plan validation.
template <typename RunFn>
QesResult run_profiled(const sim::Engine& engine, const std::string& label,
                       Algorithm algorithm, const ScenarioResult& so_far,
                       RunFn&& run) {
  obs::SimClock clock(engine);
  obs::ObsContext ctx(&clock);
  QesResult result;
  {
    obs::ScopedInstall install(ctx);
    result = run();
    obs::PlanValidation pv;
    pv.query = label;
    pv.chosen = algorithm_name(so_far.planned);
    pv.executed = algorithm_name(algorithm);
    pv.predicted_ij = so_far.model_ij.total();
    pv.predicted_gh = so_far.model_gh.total();
    pv.predicted = algorithm == Algorithm::IndexedJoin
                       ? so_far.model_ij.total()
                       : so_far.model_gh.total();
    pv.measured = result.elapsed;
    ctx.add_plan_validation(std::move(pv));
  }
  ProfileReport::instance().add(obs::build_profile(
      ctx, label, algorithm_name(algorithm), result.elapsed));
  return result;
}

}  // namespace detail

/// Runs both algorithms (each on a fresh engine+cluster so resource stats
/// and virtual clocks do not interact) and evaluates the models.
inline ScenarioResult run_scenario(Scenario sc) {
  sc.data.num_storage_nodes = sc.cluster.num_storage;
  auto ds = generate_dataset(sc.data);

  ScenarioResult out;
  out.stats = ds.stats;
  out.params = CostParams::from(
      sc.cluster, ds.stats, table1_schema(sc.data)->record_size(),
      table2_schema(sc.data)->record_size(), 1.0 / sc.cpu_work_factor);
  out.params.batch_bytes = static_cast<double>(sc.options.batch_bytes);
  out.params.bucket_pair_bytes =
      static_cast<double>(sc.options.bucket_pair_bytes);
  out.params.prefetch_lookahead =
      static_cast<double>(sc.options.prefetch_lookahead);
  // Pipelined execution gets the matching max-of-stages models, so the
  // PlanValidation error the profile records stays meaningful.
  out.model_ij = sc.options.prefetch_lookahead > 0
                     ? ij_cost_pipelined(out.params)
                     : ij_cost(out.params);
  out.model_gh = sc.options.gh_double_buffer ? gh_cost_pipelined(out.params)
                                             : gh_cost(out.params);
  out.planned = out.model_ij.total() <= out.model_gh.total()
                    ? Algorithm::IndexedJoin
                    : Algorithm::GraceHash;

  JoinQuery query{sc.data.table1_id, sc.data.table2_id, {"x", "y", "z"}, {}};
  const auto graph = ConnectivityGraph::build(
      ds.meta, query.left_table, query.right_table, query.join_attrs);

  QesOptions options = sc.options;
  options.cpu_work_factor = sc.cpu_work_factor;

  const bool profiling = ProfileReport::instance().enabled();
  const std::string label =
      profiling ? ProfileReport::instance().next_label() : std::string();
  {
    sim::Engine engine;
    Cluster cluster(engine, sc.cluster);
    BdsService bds(cluster, ds.meta, ds.stores);
    auto run = [&] {
      return run_indexed_join(cluster, bds, ds.meta, graph, query, options);
    };
    out.sim_ij = profiling
                     ? detail::run_profiled(engine, label,
                                            Algorithm::IndexedJoin, out, run)
                     : run();
  }
  {
    sim::Engine engine;
    Cluster cluster(engine, sc.cluster);
    BdsService bds(cluster, ds.meta, ds.stores);
    auto run = [&] {
      return run_grace_hash(cluster, bds, ds.meta, query, options);
    };
    out.sim_gh = profiling
                     ? detail::run_profiled(engine, label,
                                            Algorithm::GraceHash, out, run)
                     : run();
  }
  return out;
}

/// Serial-vs-pipelined series emitter: each fig bench that supports it
/// accepts `--out <path.json>` and writes {"figure":..., "rows":[...]} so
/// the repo can commit reference BENCH_*.json snapshots.
class SeriesJson {
 public:
  explicit SeriesJson(std::string figure) : figure_(std::move(figure)) {}

  void add_row(std::string row_json) { rows_.push_back(std::move(row_json)); }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::string out = "{\"figure\":\"" + figure_ + "\",\"rows\":[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += "  " + rows_[i];
      if (i + 1 < rows_.size()) out += ',';
      out += '\n';
    }
    out += "]}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  std::string figure_;
  std::vector<std::string> rows_;
};

/// Parses the optional `--out <path>` argument shared by the fig benches.
inline std::string parse_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") return argv[i + 1];
  }
  return {};
}

/// The standard pipelined configuration the serial-vs-pipelined series
/// compare against: bounded prefetch in IJ, double-buffered spills in GH.
inline QesOptions pipelined_options() {
  QesOptions o;
  o.prefetch_lookahead = 4;
  o.gh_double_buffer = true;
  return o;
}

inline void print_banner(const char* figure, const char* description) {
  ProfileReport::instance().set_figure(figure);
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(times are simulated seconds on the paper's 2006 hardware "
              "profile)\n");
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace orv::bench
