// Figure 8: effect of computing power.
//
// Paper setup: the processing rate F is varied by repeating the
// hash-build and probe instructions k times (k = 2 simulates halving the
// computing power; we also extend the sweep toward faster CPUs).
// Expected shape: IJ, whose CPU term dominates, suffers more as CPUs
// slow down and outperforms GH once computing power is high — supporting
// the paper's Section 6.2 claim that CPU-vs-I/O trends favour IJ.

#include "bench_util.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Figure 8", "effect of computing power");

  std::printf("%14s | %8s %8s | %8s %8s | %-11s\n", "relative F",
              "IJ sim", "GH sim", "IJ model", "GH model", "QPS choice");
  // Dataset with a moderate n_e*c_S so the CPU term is visible.
  for (double k : {8.0, 4.0, 2.0, 1.0, 0.5, 0.25}) {
    Scenario sc;
    sc.data.grid = {64, 64, 64};
    sc.data.part1 = {32, 8, 8};   // cross partitions: n_e*c_S = 4T
    sc.data.part2 = {8, 32, 8};
    sc.cluster.num_storage = 5;
    sc.cluster.num_compute = 5;
    sc.cpu_work_factor = k;       // k repeats = 1/k of the computing power
    const auto r = run_scenario(sc);
    std::printf("%13.3gx | %8.3f %8.3f | %8.3f %8.3f | %-11s\n", 1.0 / k,
                r.sim_ij.elapsed, r.sim_gh.elapsed, r.model_ij.total(),
                r.model_gh.total(), algorithm_name(r.planned));
  }
  std::printf("\nExpected paper shape: at low computing power GH wins (its "
              "CPU term is\nsmaller); as F grows IJ overtakes GH — the "
              "trend the models predict.\n\n");
  return 0;
}
