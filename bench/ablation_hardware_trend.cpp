// Ablation: the Section 6.2 hardware-trend claim, evaluated with a full
// hardware profile swap rather than Figure 8's instruction-repeat trick:
// on a contemporary node (fast CPU, moderately faster disks), IJ's
// advantage over GH widens and the crossover moves far to the right.

#include "bench_util.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Ablation", "2006 testbed vs a modern hardware profile");

  for (const bool modern : {false, true}) {
    ClusterSpec cspec;
    cspec.num_storage = 5;
    cspec.num_compute = 5;
    if (modern) cspec.hw = HardwareProfile::modern();
    std::printf("-- %s: %s --\n", modern ? "modern" : "paper 2006",
                cspec.hw.to_string().c_str());
    std::printf("%10s | %8s %8s | %-11s\n", "n_e*c_S", "IJ model", "GH model",
                "QPS choice");
    const std::uint64_t M = 32, w = 8;
    for (std::uint64_t s : {1, 4, 16, 32}) {
      DatasetSpec data;
      data.grid = {64, 64, 64};
      data.part1 = {M, M / s, w};
      data.part2 = {M / s, M, w};
      const auto stats = analyze(data);
      const auto params = CostParams::from(cspec, stats, 16, 16);
      const auto mij = ij_cost(params);
      const auto mgh = gh_cost(params);
      std::printf("%10llu | %8.4f %8.4f | %-11s\n",
                  (unsigned long long)(stats.num_edges * stats.c_S),
                  mij.total(), mgh.total(),
                  mij.total() <= mgh.total() ? "IndexedJoin" : "GraceHash");
    }
    DatasetSpec probe;
    probe.grid = {64, 64, 64};
    probe.part1 = {M, 1, w};
    probe.part2 = {1, M, w};
    const auto params = CostParams::from(cspec, analyze(probe), 16, 16);
    std::printf("crossover n_e*c_S = %.4g (T = %.4g)\n\n",
                crossover_ne_cs(params), params.T);
  }
  std::printf("Expected: the modern profile pushes the crossover orders of "
              "magnitude\nhigher — IJ wins in ever more of the parameter "
              "space as CPUs outpace I/O.\n\n");
  return 0;
}
