// Microbenchmark of the group-by aggregation engine: fold rate by group
// cardinality, merge rate, and the parallel local executor's probe path.

#include <benchmark/benchmark.h>

#include "common/prng.hpp"
#include "dds/aggregate.hpp"

namespace {

using namespace orv;

SchemaPtr rows_schema() {
  return Schema::make({{"g", AttrType::Int32}, {"v", AttrType::Float64}});
}

SubTable make_rows(std::size_t n, std::uint64_t groups, std::uint64_t seed) {
  SubTable st(rows_schema(), SubTableId{1, 0});
  Xoshiro256StarStar rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const Value vals[] = {
        Value(static_cast<std::int32_t>(rng.below(groups))),
        Value(rng.uniform01())};
    st.append_values(vals);
  }
  return st;
}

void BM_AggregateConsume(benchmark::State& state) {
  const SubTable rows = make_rows(1 << 15, state.range(0), 7);
  const std::vector<AggSpec> aggs = {
      AggSpec{AggSpec::Fn::Avg, "v", "a"},
      AggSpec{AggSpec::Fn::Max, "v", "m"},
      AggSpec{AggSpec::Fn::Count, "", "n"}};
  for (auto _ : state) {
    GroupByAggregator agg(rows.schema_ptr(), {"g"}, aggs);
    agg.consume(rows);
    benchmark::DoNotOptimize(agg.num_groups());
  }
  state.SetItemsProcessed(state.iterations() * rows.num_rows());
}
BENCHMARK(BM_AggregateConsume)->Arg(4)->Arg(256)->Arg(16384);

void BM_AggregateMerge(benchmark::State& state) {
  const std::vector<AggSpec> aggs = {AggSpec{AggSpec::Fn::Sum, "v", "s"}};
  GroupByAggregator a(rows_schema(), {"g"}, aggs);
  GroupByAggregator b(rows_schema(), {"g"}, aggs);
  a.consume(make_rows(1 << 14, 4096, 1));
  b.consume(make_rows(1 << 14, 4096, 2));
  for (auto _ : state) {
    GroupByAggregator merged(rows_schema(), {"g"}, aggs);
    merged.merge(a);
    merged.merge(b);
    benchmark::DoNotOptimize(merged.num_groups());
  }
  state.SetItemsProcessed(state.iterations() * (a.num_groups() + b.num_groups()));
}
BENCHMARK(BM_AggregateMerge);

void BM_AggregateFinish(benchmark::State& state) {
  const std::vector<AggSpec> aggs = {AggSpec{AggSpec::Fn::Avg, "v", "a"}};
  GroupByAggregator agg(rows_schema(), {"g"}, aggs);
  agg.consume(make_rows(1 << 15, state.range(0), 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.finish().num_rows());
  }
  state.SetItemsProcessed(state.iterations() * agg.num_groups());
}
BENCHMARK(BM_AggregateFinish)->Arg(256)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
