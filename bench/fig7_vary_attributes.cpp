// Figure 7: execution time vs the number of attributes (record size).
//
// Paper setup: both tables' attribute counts swept; each attribute is 4
// bytes (oil-reservoir datasets carry up to 21 attributes). Expected
// shape: both algorithms grow linearly in record size through the
// transfer term; GH grows faster because bucket write + read also scale
// with record bytes, while the CPU terms are record-size independent
// (pointer-valued hash tables).

#include "bench_util.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Figure 7", "varying the number of attributes");

  std::printf("%8s %8s | %8s %8s %8s | %8s %8s\n", "attrs", "rec_size",
              "IJ sim", "GH sim", "gap", "IJ model", "GH model");
  for (std::size_t attrs : {4, 6, 9, 13, 17, 21}) {
    Scenario sc;
    sc.data.grid = {64, 64, 64};
    sc.data.part1 = {16, 16, 16};
    sc.data.part2 = {16, 16, 16};
    sc.data.extra_attrs1 = attrs - 3;
    sc.data.extra_attrs2 = attrs - 3;
    sc.cluster.num_storage = 5;
    sc.cluster.num_compute = 5;
    const auto r = run_scenario(sc);
    std::printf("%8zu %8.0f | %8.3f %8.3f %8.3f | %8.3f %8.3f\n", attrs,
                r.params.RS_R, r.sim_ij.elapsed, r.sim_gh.elapsed,
                r.sim_gh.elapsed - r.sim_ij.elapsed, r.model_ij.total(),
                r.model_gh.total());
  }
  std::printf("\nExpected paper shape: linear in record size for both; GH's "
              "slope is steeper\n(bucket I/O also scales with record "
              "bytes); CPU terms unaffected.\n\n");
  return 0;
}
