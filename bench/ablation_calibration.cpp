// Calibration ablation: plan with a mis-stated hardware spec, execute on
// the true (perturbed) cluster, feed the online calibrator one observation
// per run, and watch the cost model's error ratio collapse and the plan
// choice flip to the simulation's true winner.
//
// Setup: the planner believes HardwareProfile::paper_2006(); the cluster
// it actually runs on differs 2-4x — slower network, scratch disks and
// per-tuple CPU — so the spec-sheet model both mispredicts
// magnitudes and places the IJ/GH crossover in the wrong spot. The query
// stream is the fig4 ladder run twice (the second pass shows converged
// estimates on shapes seen once before).
//
// Modes: default prints the per-query table; `--out <path.json>` writes
// the series; `--check` exits nonzero unless (a) the geometric-mean error
// ratio over the queries after the first five improves >= 2x under
// calibration, (b) at least one wrong spec-sheet plan choice is corrected
// to the simulation winner, and (c) the diagnosis names the stage that
// dominates the trace critical path on both sides of the crossover.

#include <cmath>
#include <cstring>

#include "bench_util.hpp"
#include "cost/calibration.hpp"
#include "obs/calibrate.hpp"

namespace {

using namespace orv;
using namespace orv::bench;

/// max(pred/meas, meas/pred): symmetric error factor, >= 1.
double error_factor(double predicted, double measured) {
  if (predicted <= 0 || measured <= 0) return 1.0;
  return std::max(predicted / measured, measured / predicted);
}

struct RunOutcome {
  QesResult result;
  obs::QueryObservation observation;
  std::string dominant_stage;   // critical path's dominant segment class
  std::string diag_dominant;    // what the diagnosis engine named
};

/// Executes one algorithm on the true cluster under a private obs context,
/// reduces the run to a calibrator observation, and records both the
/// critical path's dominant stage and the diagnosis engine's verdict.
template <typename RunFn>
RunOutcome run_instrumented(const sim::Engine& engine, const std::string& label,
                            Algorithm algorithm, const CostParams& belief,
                            RunFn&& run) {
  obs::SimClock clock(engine);
  obs::ObsContext ctx(&clock);
  RunOutcome out;
  {
    obs::ScopedInstall install(ctx);
    out.result = run();
  }
  const auto dag = obs::TraceDag::assemble(ctx.tracer.snapshot());
  const char* root_name =
      algorithm == Algorithm::IndexedJoin ? "ij.query" : "gh.query";
  obs::SpanId root;
  for (const auto& s : dag.spans()) {
    if (s.name == root_name) root = s.id;
  }
  const obs::CriticalPath cp = obs::critical_path(dag, root);
  out.observation = make_observation(
      belief, algorithm == Algorithm::IndexedJoin, out.result, ctx, cp, label);
  if (algorithm == Algorithm::GraceHash) {
    // Grace Hash interleaves transfer with spill per batch, so its
    // critical-path network seconds understate the transfer wall. Let the
    // Indexed Join runs teach the transfer bandwidths; GH still teaches
    // the spill/read/CPU parameters.
    out.observation.transfer_wall_seconds = 0;
  }
  if (cp.total > 0) {
    out.dominant_stage = obs::stage_name(cp.dominant());
    obs::DiagnosisInput di =
        detail::make_diag_input(label, algorithm, out.result, false);
    di.path = &cp;
    di.series = ctx.time_series();
    const obs::Diagnosis diag = obs::diagnose(di);
    out.diag_dominant = diag.dominant_stage;
    if (diag_to_stdout()) print_diagnosis(diag);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Calibration ablation",
               "online cost-model calibration on mis-stated hardware");
  const std::string out_path = parse_out_path(argc, argv);
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  SeriesJson series("ablation_calibration");

  // What the planner believes vs what the cluster actually is.
  ClusterSpec believed;
  believed.num_storage = 5;
  believed.num_compute = 5;

  ClusterSpec actual = believed;
  actual.hw.nic_bw /= 2.0;         // network half as fast as the spec sheet
  actual.hw.disk_read_bw /= 3.0;   // storage + scratch reads 3x slower
  actual.hw.disk_write_bw /= 2.5;  // scratch writes 2.5x slower
  actual.hw.gamma_build *= 2.0;    // hash insert 2x more expensive
  actual.hw.gamma_lookup *= 3.0;   // probe 3x more expensive

  QueryPlanner planner(believed);
  QesOptions qes;  // serial defaults: spans measure true device time
  obs::Calibrator calibrator(calibration_priors(
      CostParams::from(believed, ConnectivityStats{}, 1, 1, 1.0)));

  QesOptions qes_cal = qes;
  qes_cal.use_calibration = true;
  qes_cal.calibrator = &calibrator;

  std::printf("%3s %10s | %9s %9s %9s | %9s %9s %9s | %7s %7s | %-3s %-3s %-3s"
              " | %s\n",
              "q", "n_e*c_S", "prior IJ", "cal IJ", "sim IJ", "prior GH",
              "cal GH", "sim GH", "err_pri", "err_cal", "pri", "cal", "sim",
              "diag(dominant)");

  const std::uint64_t M = 32;
  const std::uint64_t w = 8;
  std::vector<double> prior_err, cal_err;  // per query, geo over IJ+GH
  std::size_t flips_corrected = 0;
  bool diag_ok_ij_side = false, diag_ok_gh_side = false;
  bool diag_mismatch = false;
  std::size_t q = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t s : {1, 2, 4, 8, 16, 32}) {
      DatasetSpec data;
      data.grid = {64, 64, 64};
      data.part1 = {M, M / s, w};
      data.part2 = {M / s, M, w};
      data.num_storage_nodes = actual.num_storage;
      auto ds = generate_dataset(data);
      JoinQuery query{data.table1_id, data.table2_id, {"x", "y", "z"}, {}};
      const auto graph = ConnectivityGraph::build(
          ds.meta, query.left_table, query.right_table, query.join_attrs);

      // Plan before executing: the calibrated decision carries the
      // spec-sheet plan as its prior, so one call yields both.
      const PlanDecision plan =
          planner.plan(ds.meta, graph, query, 1.0, &qes_cal);
      const Algorithm prior_choice =
          plan.prior_ij.total() <= plan.prior_gh.total()
              ? Algorithm::IndexedJoin
              : Algorithm::GraceHash;

      // Ground truth: both algorithms on the true cluster.
      const std::string label = strformat("calib#%zu", q);
      RunOutcome ij, gh;
      {
        sim::Engine engine;
        Cluster cluster(engine, actual);
        BdsService bds(cluster, ds.meta, ds.stores);
        ij = run_instrumented(engine, label, Algorithm::IndexedJoin,
                              plan.params, [&] {
                                return run_indexed_join(cluster, bds, ds.meta,
                                                        graph, query, qes);
                              });
      }
      {
        sim::Engine engine;
        Cluster cluster(engine, actual);
        BdsService bds(cluster, ds.meta, ds.stores);
        gh = run_instrumented(engine, label, Algorithm::GraceHash, plan.params,
                              [&] {
                                return run_grace_hash(cluster, bds, ds.meta,
                                                      query, qes);
                              });
      }
      const double meas_ij = ij.result.elapsed;
      const double meas_gh = gh.result.elapsed;
      const Algorithm sim_winner = meas_ij <= meas_gh
                                       ? Algorithm::IndexedJoin
                                       : Algorithm::GraceHash;

      const double pe = std::sqrt(
          error_factor(plan.prior_ij.total(), meas_ij) *
          error_factor(plan.prior_gh.total(), meas_gh));
      const double ce = std::sqrt(error_factor(plan.ij.total(), meas_ij) *
                                  error_factor(plan.gh.total(), meas_gh));
      prior_err.push_back(pe);
      cal_err.push_back(ce);
      if (prior_choice != sim_winner && plan.chosen == sim_winner) {
        ++flips_corrected;
      }

      // Diagnosis consistency on the sim winner's side of the crossover.
      const RunOutcome& winner =
          sim_winner == Algorithm::IndexedJoin ? ij : gh;
      if (!winner.dominant_stage.empty()) {
        const bool match = winner.dominant_stage == winner.diag_dominant;
        diag_mismatch = diag_mismatch || !match;
        if (match && sim_winner == Algorithm::IndexedJoin) {
          diag_ok_ij_side = true;
        }
        if (match && sim_winner == Algorithm::GraceHash) {
          diag_ok_gh_side = true;
        }
      }

      const double ne_cs = static_cast<double>(ds.stats.num_edges) *
                           static_cast<double>(ds.stats.c_S);
      std::printf(
          "%3zu %10.0f | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f | %7.2f %7.2f "
          "| %-3s %-3s %-3s | %s:%s\n",
          q, ne_cs, plan.prior_ij.total(), plan.ij.total(), meas_ij,
          plan.prior_gh.total(), plan.gh.total(), meas_gh, pe, ce,
          prior_choice == Algorithm::IndexedJoin ? "IJ" : "GH",
          plan.chosen == Algorithm::IndexedJoin ? "IJ" : "GH",
          sim_winner == Algorithm::IndexedJoin ? "IJ" : "GH",
          winner.dominant_stage.c_str(), winner.diag_dominant.c_str());
      series.add_row(strformat(
          "{\"q\":%zu,\"ne_cs\":%.0f,"
          "\"prior_ij\":%.6f,\"cal_ij\":%.6f,\"sim_ij\":%.6f,"
          "\"prior_gh\":%.6f,\"cal_gh\":%.6f,\"sim_gh\":%.6f,"
          "\"prior_err\":%.4f,\"cal_err\":%.4f,"
          "\"prior_choice\":\"%s\",\"cal_choice\":\"%s\","
          "\"sim_winner\":\"%s\",\"dominant\":\"%s\"}",
          q, ne_cs, plan.prior_ij.total(), plan.ij.total(), meas_ij,
          plan.prior_gh.total(), plan.gh.total(), meas_gh, pe, ce,
          algorithm_name(prior_choice), algorithm_name(plan.chosen),
          algorithm_name(sim_winner), winner.dominant_stage.c_str()));

      // Learn from both runs (after planning: plan q sees only < q).
      calibrator.observe(ij.observation);
      calibrator.observe(gh.observation);
      ++q;
    }
  }

  // Converged-regime improvement: queries after the first five.
  double pri_geo = 0, cal_geo = 0;
  std::size_t tail = 0;
  for (std::size_t i = 5; i < prior_err.size(); ++i) {
    pri_geo += std::log(prior_err[i]);
    cal_geo += std::log(cal_err[i]);
    ++tail;
  }
  pri_geo = std::exp(pri_geo / static_cast<double>(tail));
  cal_geo = std::exp(cal_geo / static_cast<double>(tail));
  const double improvement = cal_geo > 0 ? pri_geo / cal_geo : 0.0;

  std::printf("\nCalibrated state after %llu observations: %s\n",
              (unsigned long long)calibrator.observed(),
              calibrator.state().to_json().c_str());
  std::printf("Geo-mean error factor (queries 5..%zu): prior %.2f, "
              "calibrated %.2f (%.1fx better)\n",
              prior_err.size() - 1, pri_geo, cal_geo, improvement);
  std::printf("Plan choices corrected to the sim winner: %zu\n",
              flips_corrected);

  series.add_row(strformat(
      "{\"summary\":true,\"prior_geo_err\":%.4f,\"cal_geo_err\":%.4f,"
      "\"improvement\":%.4f,\"flips_corrected\":%zu}",
      pri_geo, cal_geo, improvement, flips_corrected));
  if (!out_path.empty() && !series.write(out_path)) return 1;

  if (check) {
    bool ok = true;
    if (improvement < 2.0) {
      std::fprintf(stderr, "CHECK FAILED: error improvement %.2fx < 2x\n",
                   improvement);
      ok = false;
    }
    if (flips_corrected == 0) {
      std::fprintf(stderr, "CHECK FAILED: no plan choice corrected\n");
      ok = false;
    }
    if (!diag_ok_ij_side || !diag_ok_gh_side || diag_mismatch) {
      std::fprintf(stderr,
                   "CHECK FAILED: diagnosis/critical-path dominant stage "
                   "(ij side %d, gh side %d, mismatch %d)\n",
                   diag_ok_ij_side ? 1 : 0, diag_ok_gh_side ? 1 : 0,
                   diag_mismatch ? 1 : 0);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("CHECK PASSED: >=2x error reduction, %zu corrected plan "
                "choice(s), diagnosis matches the critical path on both "
                "sides of the crossover\n",
                flips_corrected);
  }
  return 0;
}
