// Figure 4: execution time vs the dataset parameter n_e * c_S.
//
// Paper setup: constant grid, partition sizes varied in powers of two at
// constant edge ratio, 5 storage + 5 compute nodes. Expected shape: the
// Indexed Join's CPU (lookup) cost grows with n_e * c_S while Grace Hash
// is insensitive to it but pays bucket write/read I/O, so IJ wins on the
// left, GH on the right, with a crossover the cost models predict.
//
// Each point also runs the overlapped fetch/compute pipeline (prefetch
// lookahead 4, double-buffered spills): as n_e * c_S grows, IJ's Cpu term
// catches up with Transfer and the pipelined run approaches
// max(Transfer, Cpu). `--out <path.json>` writes the serial-vs-pipelined
// series (committed as BENCH_fig4.json).

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Figure 4", "varying dataset parameter combination n_e * c_S");
  const std::string out_path = parse_out_path(argc, argv);
  SeriesJson series("fig4");

  const std::uint64_t M = 32;
  const std::uint64_t w = 8;
  std::printf("%10s %10s | %8s %8s | %8s %8s | %8s %8s | %-11s %-11s | %s\n",
              "n_e*c_S", "edge_ratio", "IJ sim", "GH sim", "IJ pipe",
              "GH pipe", "IJ model", "GH model", "QPS choice", "sim winner",
              "diagnosis (winner)");

  double crossover = 0;
  for (std::uint64_t s : {1, 2, 4, 8, 16, 32}) {
    Scenario sc;
    sc.data.grid = {64, 64, 64};
    sc.data.part1 = {M, M / s, w};
    sc.data.part2 = {M / s, M, w};
    sc.cluster.num_storage = 5;
    sc.cluster.num_compute = 5;
    const auto r = run_scenario(sc);
    Scenario pc = sc;
    pc.options = pipelined_options();
    const auto p = run_scenario(pc);
    crossover = crossover_ne_cs(r.params);
    const bool ij_wins = r.sim_ij.elapsed <= r.sim_gh.elapsed;
    // Diagnosis column: one-line bottleneck verdict for the sim winner.
    // Only instrumented runs (ORV_PROFILE / ORV_TRACE) assemble the trace
    // DAG the diagnosis walks; otherwise the column shows "-".
    const std::string diag =
        r.diag_valid ? (ij_wins ? r.diag_ij : r.diag_gh).to_string()
                     : std::string("-");
    std::printf(
        "%10.0f %10.4f | %8.3f %8.3f | %8.3f %8.3f | %8.3f %8.3f | %-11s "
        "%-11s | %s\n",
        r.ne_cs(), r.stats.edge_ratio, r.sim_ij.elapsed, r.sim_gh.elapsed,
        p.sim_ij.elapsed, p.sim_gh.elapsed, r.model_ij.total(),
        r.model_gh.total(), algorithm_name(r.planned),
        ij_wins ? "IndexedJoin" : "GraceHash", diag.c_str());
    // The *_stage_* columns are the serial-model critical-path breakdown
    // bench_compare's regression attribution diffs when a gate fails.
    series.add_row(strformat(
        "{\"ne_cs\":%.0f,\"ij_serial\":%.6f,\"gh_serial\":%.6f,"
        "\"ij_pipelined\":%.6f,\"gh_pipelined\":%.6f,"
        "\"ij_model_serial\":%.6f,\"gh_model_serial\":%.6f,"
        "\"ij_model_pipelined\":%.6f,\"gh_model_pipelined\":%.6f,"
        "\"ij_overlap_ratio\":%.4f,"
        "\"ij_error_ratio\":%.6f,\"gh_error_ratio\":%.6f,"
        "\"ij_stage_transfer\":%.6f,\"ij_stage_cpu\":%.6f,"
        "\"gh_stage_transfer\":%.6f,\"gh_stage_write\":%.6f,"
        "\"gh_stage_read\":%.6f,\"gh_stage_cpu\":%.6f}",
        r.ne_cs(), r.sim_ij.elapsed, r.sim_gh.elapsed, p.sim_ij.elapsed,
        p.sim_gh.elapsed, r.model_ij.total(), r.model_gh.total(),
        p.model_ij.total(), p.model_gh.total(), p.sim_ij.overlap_ratio,
        r.ij_error_ratio(), r.gh_error_ratio(), r.model_ij.transfer,
        r.model_ij.cpu(), r.model_gh.transfer, r.model_gh.write,
        r.model_gh.read, r.model_gh.cpu()));
  }
  std::printf("\nModel-predicted crossover: n_e*c_S = %.4g\n", crossover);
  std::printf("Expected paper shape: IJ below GH at small n_e*c_S, GH below "
              "IJ at large;\nmodels track simulation and predict the "
              "crossover point. Pipelined IJ narrows\ntoward max(Transfer, "
              "Cpu) as the lookup term grows.\n\n");
  if (!out_path.empty() && !series.write(out_path)) return 1;
  return 0;
}
