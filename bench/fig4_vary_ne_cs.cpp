// Figure 4: execution time vs the dataset parameter n_e * c_S.
//
// Paper setup: constant grid, partition sizes varied in powers of two at
// constant edge ratio, 5 storage + 5 compute nodes. Expected shape: the
// Indexed Join's CPU (lookup) cost grows with n_e * c_S while Grace Hash
// is insensitive to it but pays bucket write/read I/O, so IJ wins on the
// left, GH on the right, with a crossover the cost models predict.

#include "bench_util.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Figure 4", "varying dataset parameter combination n_e * c_S");

  const std::uint64_t M = 32;
  const std::uint64_t w = 8;
  std::printf("%10s %10s | %8s %8s | %8s %8s | %-11s %-11s\n", "n_e*c_S",
              "edge_ratio", "IJ sim", "GH sim", "IJ model", "GH model",
              "QPS choice", "sim winner");

  double crossover = 0;
  for (std::uint64_t s : {1, 2, 4, 8, 16, 32}) {
    Scenario sc;
    sc.data.grid = {64, 64, 64};
    sc.data.part1 = {M, M / s, w};
    sc.data.part2 = {M / s, M, w};
    sc.cluster.num_storage = 5;
    sc.cluster.num_compute = 5;
    const auto r = run_scenario(sc);
    crossover = crossover_ne_cs(r.params);
    std::printf("%10.0f %10.4f | %8.3f %8.3f | %8.3f %8.3f | %-11s %-11s\n",
                r.ne_cs(), r.stats.edge_ratio, r.sim_ij.elapsed,
                r.sim_gh.elapsed, r.model_ij.total(), r.model_gh.total(),
                algorithm_name(r.planned),
                r.sim_ij.elapsed <= r.sim_gh.elapsed ? "IndexedJoin"
                                                     : "GraceHash");
  }
  std::printf("\nModel-predicted crossover: n_e*c_S = %.4g\n", crossover);
  std::printf("Expected paper shape: IJ below GH at small n_e*c_S, GH below "
              "IJ at large;\nmodels track simulation and predict the "
              "crossover point.\n\n");
  return 0;
}
