// Ablation: overlapped fetch/compute pipelining vs prefetch lookahead.
//
// Fixed Transfer ≈ Cpu configuration (cpu_work_factor 8 on the 2006
// profile puts hash build/probe in the same ballpark as the network
// transfer), lookahead swept 0–8 with and without coalesced batch
// fetches, plus the Grace Hash spill double-buffer. Expected shape:
// virtual time falls from Transfer + Cpu toward max(Transfer, Cpu) as the
// lookahead deepens, the overlap ratio climbs toward 1, and fingerprints
// never change.
//
//   --check   CI perf-smoke mode: runs lookahead 0 and 4 only, asserts
//             the pipelined run is at least 10% faster with an identical
//             fingerprint, exits nonzero otherwise.

#include <cstring>

#include "bench_util.hpp"

namespace {

orv::bench::Scenario overlap_scenario() {
  orv::bench::Scenario sc;
  sc.data.grid = {16, 16, 8};
  sc.data.part1 = {4, 4, 4};
  sc.data.part2 = {2, 2, 2};
  sc.cluster.num_storage = 2;
  sc.cluster.num_compute = 2;
  sc.cpu_work_factor = 8;  // Transfer ≈ Cpu: the overlap-friendly regime
  sc.options.bucket_pair_bytes = 16 * 1024;  // several GH buckets
  return sc;
}

int check_mode() {
  using namespace orv::bench;
  Scenario serial = overlap_scenario();
  const auto base = run_scenario(serial);

  Scenario pipe = overlap_scenario();
  pipe.options.prefetch_lookahead = 4;
  pipe.options.gh_double_buffer = true;
  const auto p = run_scenario(pipe);

  bool ok = true;
  if (p.sim_ij.result_fingerprint != base.sim_ij.result_fingerprint ||
      p.sim_ij.result_tuples != base.sim_ij.result_tuples) {
    std::printf("FAIL: pipelined IJ fingerprint diverged\n");
    ok = false;
  }
  if (p.sim_gh.result_fingerprint != base.sim_gh.result_fingerprint ||
      p.sim_gh.result_tuples != base.sim_gh.result_tuples) {
    std::printf("FAIL: pipelined GH fingerprint diverged\n");
    ok = false;
  }
  if (p.sim_ij.elapsed > 0.9 * base.sim_ij.elapsed) {
    std::printf("FAIL: pipelined IJ %.6fs not <= 0.9 x serial %.6fs\n",
                p.sim_ij.elapsed, base.sim_ij.elapsed);
    ok = false;
  }
  if (p.sim_gh.elapsed >= base.sim_gh.elapsed) {
    std::printf("FAIL: pipelined GH %.6fs not < serial %.6fs\n",
                p.sim_gh.elapsed, base.sim_gh.elapsed);
    ok = false;
  }
  std::printf("%s: IJ %.6f -> %.6f (%.1f%%), GH %.6f -> %.6f (%.1f%%)\n",
              ok ? "PASS" : "FAIL", base.sim_ij.elapsed, p.sim_ij.elapsed,
              100.0 * (1.0 - p.sim_ij.elapsed / base.sim_ij.elapsed),
              base.sim_gh.elapsed, p.sim_gh.elapsed,
              100.0 * (1.0 - p.sim_gh.elapsed / base.sim_gh.elapsed));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orv;
  using namespace orv::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) return check_mode();
  }

  print_banner("Ablation: pipelining",
               "overlapped fetch/compute vs prefetch lookahead");
  const std::string out_path = parse_out_path(argc, argv);
  SeriesJson series("ablation_pipeline");

  const auto base = run_scenario(overlap_scenario());
  std::printf("serial baseline: IJ %.6fs  GH %.6fs  (model IJ %.6fs)\n\n",
              base.sim_ij.elapsed, base.sim_gh.elapsed,
              base.model_ij.total());

  std::printf("%9s %8s | %8s %8s %8s %8s | %8s %8s | %6s\n", "lookahead",
              "coalesce", "IJ sim", "IJ gain", "overlap", "IJ model",
              "GH sim", "GH gain", "fp==");
  for (std::size_t la : {0, 1, 2, 3, 4, 6, 8}) {
    for (bool coalesce : {false, true}) {
      if (la == 0 && coalesce) continue;  // no prefetch, nothing to batch
      Scenario sc = overlap_scenario();
      sc.options.prefetch_lookahead = la;
      sc.options.coalesce_fetches = coalesce;
      sc.options.gh_double_buffer = la > 0;
      const auto r = run_scenario(sc);
      const bool same =
          r.sim_ij.result_fingerprint == base.sim_ij.result_fingerprint &&
          r.sim_gh.result_fingerprint == base.sim_gh.result_fingerprint;
      std::printf(
          "%9zu %8s | %8.5f %7.1f%% %8.3f %8.5f | %8.5f %7.1f%% | %6s\n", la,
          coalesce ? "yes" : "no", r.sim_ij.elapsed,
          100.0 * (1.0 - r.sim_ij.elapsed / base.sim_ij.elapsed),
          r.sim_ij.overlap_ratio, r.model_ij.total(), r.sim_gh.elapsed,
          100.0 * (1.0 - r.sim_gh.elapsed / base.sim_gh.elapsed),
          same ? "yes" : "NO!");
      series.add_row(strformat(
          "{\"lookahead\":%zu,\"coalesce\":%s,\"ij\":%.6f,\"gh\":%.6f,"
          "\"ij_model\":%.6f,\"overlap_ratio\":%.4f,\"prefetch_issued\":%llu,"
          "\"prefetch_wasted\":%llu,\"fingerprint_match\":%s}",
          la, coalesce ? "true" : "false", r.sim_ij.elapsed, r.sim_gh.elapsed,
          r.model_ij.total(), r.sim_ij.overlap_ratio,
          (unsigned long long)r.sim_ij.prefetch_issued,
          (unsigned long long)r.sim_ij.prefetch_wasted,
          same ? "true" : "false"));
    }
  }
  std::printf("\nExpected shape: IJ time falls toward max(Transfer, Cpu) as "
              "lookahead grows and\nthe overlap ratio approaches 1; "
              "fingerprints are identical at every depth.\n\n");
  if (!out_path.empty() && !series.write(out_path)) return 1;
  return 0;
}
