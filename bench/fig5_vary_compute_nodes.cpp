// Figure 5: execution time vs the number of compute (joiner) nodes.
//
// Paper setup: a dataset with low n_e * c_S (so the Indexed Join wins),
// n_j swept. Expected shape: both algorithms speed up with more compute
// nodes and the IJ-GH gap shrinks as ~1/n_j.
//
// Each point also runs the overlapped fetch/compute pipeline; with few
// joiners the per-node Cpu share is largest, so that is where overlap
// hides the most. `--out <path.json>` writes the serial-vs-pipelined
// series (committed as BENCH_fig5.json).

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Figure 5", "varying the number of compute nodes");
  const std::string out_path = parse_out_path(argc, argv);
  SeriesJson series("fig5");

  std::printf("%6s | %8s %8s %8s | %8s %8s | %8s %8s\n", "n_j", "IJ sim",
              "GH sim", "gap", "IJ pipe", "GH pipe", "IJ model", "GH model");
  for (std::size_t nj : {1, 2, 3, 4, 5, 6, 8}) {
    Scenario sc;
    sc.data.grid = {64, 64, 64};
    sc.data.part1 = {16, 16, 16};  // aligned partitions: n_e*c_S = T (low)
    sc.data.part2 = {16, 16, 16};
    sc.cluster.num_storage = 5;
    sc.cluster.num_compute = nj;
    const auto r = run_scenario(sc);
    Scenario pc = sc;
    pc.options = pipelined_options();
    const auto p = run_scenario(pc);
    std::printf("%6zu | %8.3f %8.3f %8.3f | %8.3f %8.3f | %8.3f %8.3f\n", nj,
                r.sim_ij.elapsed, r.sim_gh.elapsed,
                r.sim_gh.elapsed - r.sim_ij.elapsed, p.sim_ij.elapsed,
                p.sim_gh.elapsed, r.model_ij.total(), r.model_gh.total());
    series.add_row(strformat(
        "{\"n_j\":%zu,\"ij_serial\":%.6f,\"gh_serial\":%.6f,"
        "\"ij_pipelined\":%.6f,\"gh_pipelined\":%.6f,"
        "\"ij_model_serial\":%.6f,\"gh_model_serial\":%.6f,"
        "\"ij_model_pipelined\":%.6f,\"gh_model_pipelined\":%.6f,"
        "\"ij_overlap_ratio\":%.4f}",
        nj, r.sim_ij.elapsed, r.sim_gh.elapsed, p.sim_ij.elapsed,
        p.sim_gh.elapsed, r.model_ij.total(), r.model_gh.total(),
        p.model_ij.total(), p.model_gh.total(), p.sim_ij.overlap_ratio));
  }
  std::printf("\nExpected paper shape: IJ outperforms GH (low n_e*c_S); the "
              "gap decreases\nroughly as 1/n_j as compute nodes are "
              "added.\n\n");
  if (!out_path.empty() && !series.write(out_path)) return 1;
  return 0;
}
