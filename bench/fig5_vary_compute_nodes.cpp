// Figure 5: execution time vs the number of compute (joiner) nodes.
//
// Paper setup: a dataset with low n_e * c_S (so the Indexed Join wins),
// n_j swept. Expected shape: both algorithms speed up with more compute
// nodes and the IJ-GH gap shrinks as ~1/n_j.

#include "bench_util.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Figure 5", "varying the number of compute nodes");

  std::printf("%6s | %8s %8s %8s | %8s %8s\n", "n_j", "IJ sim", "GH sim",
              "gap", "IJ model", "GH model");
  for (std::size_t nj : {1, 2, 3, 4, 5, 6, 8}) {
    Scenario sc;
    sc.data.grid = {64, 64, 64};
    sc.data.part1 = {16, 16, 16};  // aligned partitions: n_e*c_S = T (low)
    sc.data.part2 = {16, 16, 16};
    sc.cluster.num_storage = 5;
    sc.cluster.num_compute = nj;
    const auto r = run_scenario(sc);
    std::printf("%6zu | %8.3f %8.3f %8.3f | %8.3f %8.3f\n", nj,
                r.sim_ij.elapsed, r.sim_gh.elapsed,
                r.sim_gh.elapsed - r.sim_ij.elapsed, r.model_ij.total(),
                r.model_gh.total());
  }
  std::printf("\nExpected paper shape: IJ outperforms GH (low n_e*c_S); the "
              "gap decreases\nroughly as 1/n_j as compute nodes are "
              "added.\n\n");
  return 0;
}
