// Ablation: how much the Indexed Join depends on its two-stage schedule
// and LRU cache (the OPAS sensitivity the paper discusses in Section 6.2).
//
// With the paper's schedule and enough memory, no sub-table is fetched
// twice. Shuffled pair order or a constrained cache forces re-fetches,
// inflating the transfer cost — which is why the IJ cost model is only
// valid under the schedule+memory assumption.

#include "bench_util.hpp"
#include "sched/schedule.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Ablation", "IJ scheduling strategy and cache policy");

  DatasetSpec data;
  data.grid = {64, 64, 64};
  data.part1 = {32, 4, 8};   // sizeable components: a=8, b=8, E_C=64
  data.part2 = {4, 32, 8};
  data.num_storage_nodes = 5;
  ClusterSpec cspec;
  cspec.num_storage = 5;
  cspec.num_compute = 5;

  auto ds = generate_dataset(data);
  JoinQuery query{data.table1_id, data.table2_id, {"x", "y", "z"}, {}};
  const auto graph = ConnectivityGraph::build(ds.meta, 1, 2, query.join_attrs);

  struct Config {
    const char* name;
    ComponentAssign assign;
    PairOrder order;
    CachePolicy policy;
    std::uint64_t cache_bytes;  // 0 = full memory
  };
  const Config configs[] = {
      {"paper: round-robin + lex + LRU", ComponentAssign::RoundRobin,
       PairOrder::Lexicographic, CachePolicy::LRU, 0},
      {"shuffled pairs + LRU", ComponentAssign::RoundRobin,
       PairOrder::Shuffled, CachePolicy::LRU, 0},
      {"random components + lex + LRU", ComponentAssign::Random,
       PairOrder::Lexicographic, CachePolicy::LRU, 0},
      {"paper order, tiny cache (256 KiB) LRU", ComponentAssign::RoundRobin,
       PairOrder::Lexicographic, CachePolicy::LRU, 256 * 1024},
      {"shuffled, tiny cache (256 KiB) LRU", ComponentAssign::RoundRobin,
       PairOrder::Shuffled, CachePolicy::LRU, 256 * 1024},
      {"paper order, tiny cache (256 KiB) FIFO", ComponentAssign::RoundRobin,
       PairOrder::Lexicographic, CachePolicy::FIFO, 256 * 1024},
  };

  std::printf("%-42s | %8s %9s %9s %10s\n", "configuration", "time",
              "fetches", "evictions", "hit rate");
  for (const auto& cfg : configs) {
    sim::Engine engine;
    Cluster cluster(engine, cspec);
    BdsService bds(cluster, ds.meta, ds.stores);
    QesOptions options;
    options.assign = cfg.assign;
    options.pair_order = cfg.order;
    options.cache_policy = cfg.policy;
    options.cache_bytes = cfg.cache_bytes;
    options.seed = 11;
    const auto r =
        run_indexed_join(cluster, bds, ds.meta, graph, query, options);
    std::printf("%-42s | %7.3fs %9llu %9llu %9.1f%%\n", cfg.name, r.elapsed,
                (unsigned long long)r.subtable_fetches,
                (unsigned long long)r.cache_stats.evictions,
                100.0 * r.cache_stats.hit_rate());
  }
  std::printf("\nExpected: the paper's two-stage schedule + LRU never "
              "re-fetches; shuffled\norder or tiny caches re-transfer "
              "sub-tables and slow IJ down.\n\n");
  return 0;
}
