// bench_compare: perf-regression gate over the committed BENCH_*.json
// snapshots. Compares a candidate series file (written by a fig bench's
// --out flag) against its committed baseline and fails — exit code 1 —
// when any metric drifts outside its tolerance.
//
//   bench_compare <baseline.json> <candidate.json>
//                 [--tol default=0.05] [--tol <metric>=<frac>]...
//
// Files are the {"figure": "...", "rows": [{...}, ...]} shape SeriesJson
// writes. Rows are matched by position; every metric present in either
// row is compared. Numbers use a two-sided relative tolerance
// |cand - base| <= frac * max(|base|, |cand|); strings and booleans must
// match exactly. The simulator is deterministic, so the default 5% is
// headroom for intentional model refinements, not run-to-run noise —
// tighten or widen per metric with --tol.
//
// The parser below is a deliberately small recursive-descent JSON reader
// (objects, arrays, strings, numbers, true/false/null) so the tool stays
// dependency-free and usable from CI before the rest of the repo builds.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------- JSON --

struct JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonPtr> items;
  // Insertion order preserved so report lines follow the file's layout.
  std::vector<std::pair<std::string, JsonPtr>> fields;

  const JsonPtr* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  JsonPtr parse() {
    JsonPtr v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::fprintf(stderr, "bench_compare: JSON error at %zu:%zu: %s\n", line,
                 col, why.c_str());
    std::exit(2);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonPtr value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return bool_value();
      case 'n': return null_value();
      default: return number();
    }
  }

  JsonPtr object() {
    expect('{');
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = string_literal();
      skip_ws();
      expect(':');
      v->fields.emplace_back(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonPtr array() {
    expect('[');
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v->items.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // The series files only hold ASCII; decode \uXXXX to its low
          // byte, which round-trips everything SeriesJson ever emits.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          out += static_cast<char>(code & 0xff);
          break;
        }
        default: fail(std::string("bad escape '\\") + e + "'");
      }
    }
  }

  JsonPtr string_value() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::String;
    v->str = string_literal();
    return v;
  }

  JsonPtr bool_value() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v->b = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v->b = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonPtr null_value() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Null;
    return v;
  }

  JsonPtr number() {
    const std::size_t begin = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected a value");
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Number;
    try {
      v->num = std::stod(text_.substr(begin, pos_ - begin));
    } catch (...) {
      fail("bad number '" + text_.substr(begin, pos_ - begin) + "'");
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

JsonPtr load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parser(ss.str()).parse();
}

// ------------------------------------------------------------- compare --

struct Tolerances {
  double fallback = 0.05;
  std::map<std::string, double> per_metric;

  double for_metric(const std::string& name) const {
    auto it = per_metric.find(name);
    return it != per_metric.end() ? it->second : fallback;
  }
};

std::string row_label(const JsonValue& row, std::size_t index) {
  // The leading field of every series row is its x-axis key (ne_cs, n_j,
  // ...); use it so violations name the point, not just the index.
  std::string label = "row " + std::to_string(index);
  if (!row.fields.empty() &&
      row.fields.front().second->kind == JsonValue::Kind::Number) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", row.fields.front().second->num);
    label += " (" + row.fields.front().first + "=" + buf + ")";
  }
  return label;
}

int compare(const JsonValue& base, const JsonValue& cand,
            const Tolerances& tol) {
  int violations = 0;
  auto violate = [&](const std::string& what) {
    std::fprintf(stderr, "FAIL %s\n", what.c_str());
    ++violations;
  };

  const JsonPtr* bfig = base.find("figure");
  const JsonPtr* cfig = cand.find("figure");
  const std::string bname = bfig ? (*bfig)->str : "?";
  if (!bfig || !cfig || (*bfig)->str != (*cfig)->str) {
    violate("figure mismatch: baseline=" + bname +
            " candidate=" + (cfig ? (*cfig)->str : "?"));
    return violations;
  }

  const JsonPtr* brows = base.find("rows");
  const JsonPtr* crows = cand.find("rows");
  if (!brows || !crows) {
    violate(bname + ": missing \"rows\" array");
    return violations;
  }
  if ((*brows)->items.size() != (*crows)->items.size()) {
    violate(bname + ": row count " +
            std::to_string((*crows)->items.size()) + " != baseline " +
            std::to_string((*brows)->items.size()));
    return violations;
  }

  std::size_t checked = 0;
  for (std::size_t i = 0; i < (*brows)->items.size(); ++i) {
    const JsonValue& brow = *(*brows)->items[i];
    const JsonValue& crow = *(*crows)->items[i];
    const std::string label = bname + " " + row_label(brow, i);

    // Union of metric names, baseline order first.
    std::vector<std::string> keys;
    for (const auto& [k, v] : brow.fields) keys.push_back(k);
    for (const auto& [k, v] : crow.fields) {
      if (!brow.find(k)) keys.push_back(k);
    }
    for (const std::string& key : keys) {
      const JsonPtr* bv = brow.find(key);
      const JsonPtr* cv = crow.find(key);
      if (!bv || !cv) {
        violate(label + ": metric '" + key + "' " +
                (bv ? "missing from candidate" : "not in baseline"));
        continue;
      }
      ++checked;
      const JsonValue& b = **bv;
      const JsonValue& c = **cv;
      if (b.kind != c.kind) {
        violate(label + ": metric '" + key + "' changed type");
        continue;
      }
      if (b.kind == JsonValue::Kind::Number) {
        const double frac = tol.for_metric(key);
        const double scale = std::max(std::abs(b.num), std::abs(c.num));
        const double diff = std::abs(c.num - b.num);
        if (diff > frac * scale + 1e-12) {
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "%s: %s base=%.6g cand=%.6g (%+.2f%% > tol %.2f%%)",
                        label.c_str(), key.c_str(), b.num, c.num,
                        b.num != 0 ? 100.0 * (c.num - b.num) / b.num : 0.0,
                        100.0 * frac);
          violate(buf);
        }
      } else if (b.kind == JsonValue::Kind::String) {
        if (b.str != c.str) {
          violate(label + ": " + key + " \"" + b.str + "\" -> \"" + c.str +
                  "\"");
        }
      } else if (b.kind == JsonValue::Kind::Bool) {
        if (b.b != c.b) violate(label + ": " + key + " flipped");
      }
    }
  }
  if (violations == 0) {
    std::printf("OK %s: %zu rows, %zu metrics within tolerance\n",
                bname.c_str(), (*brows)->items.size(), checked);
  }
  return violations;
}

void usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <candidate.json>\n"
               "                     [--tol default=<frac>] "
               "[--tol <metric>=<frac>]...\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  Tolerances tol;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol") {
      if (i + 1 >= argc) usage();
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) usage();
      const std::string name = spec.substr(0, eq);
      const double frac = std::atof(spec.c_str() + eq + 1);
      if (frac < 0) usage();
      if (name == "default") {
        tol.fallback = frac;
      } else {
        tol.per_metric[name] = frac;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) usage();

  const JsonPtr base = load(files[0]);
  const JsonPtr cand = load(files[1]);
  const int violations = compare(*base, *cand, tol);
  if (violations > 0) {
    std::fprintf(stderr, "bench_compare: %d violation(s) against %s\n",
                 violations, files[0].c_str());
    return 1;
  }
  return 0;
}
