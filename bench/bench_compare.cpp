// bench_compare: perf-regression gate over the committed BENCH_*.json
// snapshots. Compares a candidate series file (written by a fig bench's
// --out flag) against its committed baseline and fails — exit code 1 —
// when any metric drifts outside its tolerance.
//
//   bench_compare <baseline.json> <candidate.json>
//                 [--tol default=0.05] [--tol <metric>=<frac>]...
//                 [--json <report.json>]
//
// Files are the {"figure": "...", "rows": [{...}, ...]} shape SeriesJson
// writes. Rows are matched by position; every metric present in either
// row is compared. Numbers use a two-sided relative tolerance
// |cand - base| <= frac * max(|base|, |cand|); strings and booleans must
// match exactly. The simulator is deterministic, so the default 5% is
// headroom for intentional model refinements, not run-to-run noise —
// tighten or widen per metric with --tol.
//
// On a numeric violation the tool also *attributes* the regression: when
// the failing metric's family (its prefix up to the first '_', e.g. "ij"
// of ij_serial) has per-stage breakdown columns in the same row
// (<family>_stage_transfer, <family>_stage_cpu, ...), the stage with the
// largest relative delta between baseline and candidate is blamed on a
// "BLAME" line. --json writes the full machine-readable report —
// per-metric deltas on pass as well as fail, violations, and blame — for
// CI artifact upload.
//
// The parser below is a deliberately small recursive-descent JSON reader
// (objects, arrays, strings, numbers, true/false/null) so the tool stays
// dependency-free and usable from CI before the rest of the repo builds.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------- JSON --

struct JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonPtr> items;
  // Insertion order preserved so report lines follow the file's layout.
  std::vector<std::pair<std::string, JsonPtr>> fields;

  const JsonPtr* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  JsonPtr parse() {
    JsonPtr v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::fprintf(stderr, "bench_compare: JSON error at %zu:%zu: %s\n", line,
                 col, why.c_str());
    std::exit(2);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonPtr value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return bool_value();
      case 'n': return null_value();
      default: return number();
    }
  }

  JsonPtr object() {
    expect('{');
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = string_literal();
      skip_ws();
      expect(':');
      v->fields.emplace_back(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonPtr array() {
    expect('[');
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v->items.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // The series files only hold ASCII; decode \uXXXX to its low
          // byte, which round-trips everything SeriesJson ever emits.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          out += static_cast<char>(code & 0xff);
          break;
        }
        default: fail(std::string("bad escape '\\") + e + "'");
      }
    }
  }

  JsonPtr string_value() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::String;
    v->str = string_literal();
    return v;
  }

  JsonPtr bool_value() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v->b = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v->b = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonPtr null_value() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Null;
    return v;
  }

  JsonPtr number() {
    const std::size_t begin = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected a value");
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::Number;
    try {
      v->num = std::stod(text_.substr(begin, pos_ - begin));
    } catch (...) {
      fail("bad number '" + text_.substr(begin, pos_ - begin) + "'");
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

JsonPtr load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parser(ss.str()).parse();
}

// ------------------------------------------------------------- compare --

struct Tolerances {
  double fallback = 0.05;
  std::map<std::string, double> per_metric;

  double for_metric(const std::string& name) const {
    auto it = per_metric.find(name);
    return it != per_metric.end() ? it->second : fallback;
  }
};

/// One numeric comparison, kept for the machine-readable report.
struct MetricCheck {
  std::string row;     // row label ("row 3 (ne_cs=8)")
  std::string metric;
  double base = 0, cand = 0;
  double rel = 0;  // (cand - base) / |base|, 0 when base == 0
  double tol = 0;
  bool violated = false;
};

/// Regression attribution: the per-stage breakdown column blamed for one
/// failing metric.
struct Blame {
  std::string row;
  std::string metric;       // the violated metric
  std::string stage;        // "transfer", "cpu", ...
  std::string stage_metric; // "ij_stage_transfer"
  double base = 0, cand = 0;
  double rel = 0;
};

struct Report {
  std::string figure;
  std::size_t rows = 0;
  std::size_t checked = 0;
  int violations = 0;
  std::vector<MetricCheck> checks;       // every numeric comparison
  std::vector<std::string> mismatches;   // non-numeric / structural FAILs
  std::vector<Blame> blames;
};

/// Attributes a failing numeric metric to the stage column with the
/// largest relative delta in the same row. Returns false when the metric
/// has no stage breakdown (no <family>_stage_* columns).
bool attribute_blame(const JsonValue& brow, const JsonValue& crow,
                     const std::string& row, const std::string& metric,
                     Report* rep) {
  const std::size_t us = metric.find('_');
  if (us == std::string::npos) return false;
  const std::string stage_prefix = metric.substr(0, us) + "_stage_";
  Blame best;
  bool found = false;
  for (const auto& [k, bv] : brow.fields) {
    if (k.rfind(stage_prefix, 0) != 0) continue;
    if (bv->kind != JsonValue::Kind::Number) continue;
    const JsonPtr* cv = crow.find(k);
    if (!cv || (*cv)->kind != JsonValue::Kind::Number) continue;
    const double b = bv->num, c = (*cv)->num;
    const double scale = std::max(std::abs(b), 1e-12);
    const double rel = (c - b) / scale;
    if (!found || std::abs(rel) > std::abs(best.rel)) {
      found = true;
      best.row = row;
      best.metric = metric;
      best.stage = k.substr(stage_prefix.size());
      best.stage_metric = k;
      best.base = b;
      best.cand = c;
      best.rel = rel;
    }
  }
  if (found) rep->blames.push_back(best);
  return found;
}

std::string row_label(const JsonValue& row, std::size_t index) {
  // The leading field of every series row is its x-axis key (ne_cs, n_j,
  // ...); use it so violations name the point, not just the index.
  std::string label = "row " + std::to_string(index);
  if (!row.fields.empty() &&
      row.fields.front().second->kind == JsonValue::Kind::Number) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", row.fields.front().second->num);
    label += " (" + row.fields.front().first + "=" + buf + ")";
  }
  return label;
}

int compare(const JsonValue& base, const JsonValue& cand,
            const Tolerances& tol, Report* rep) {
  int violations = 0;
  auto violate = [&](const std::string& what) {
    std::fprintf(stderr, "FAIL %s\n", what.c_str());
    rep->mismatches.push_back(what);
    ++violations;
  };

  const JsonPtr* bfig = base.find("figure");
  const JsonPtr* cfig = cand.find("figure");
  const std::string bname = bfig ? (*bfig)->str : "?";
  rep->figure = bname;
  if (!bfig || !cfig || (*bfig)->str != (*cfig)->str) {
    violate("figure mismatch: baseline=" + bname +
            " candidate=" + (cfig ? (*cfig)->str : "?"));
    return violations;
  }

  const JsonPtr* brows = base.find("rows");
  const JsonPtr* crows = cand.find("rows");
  if (!brows || !crows) {
    violate(bname + ": missing \"rows\" array");
    return violations;
  }
  if ((*brows)->items.size() != (*crows)->items.size()) {
    violate(bname + ": row count " +
            std::to_string((*crows)->items.size()) + " != baseline " +
            std::to_string((*brows)->items.size()));
    return violations;
  }
  rep->rows = (*brows)->items.size();

  std::size_t checked = 0;
  for (std::size_t i = 0; i < (*brows)->items.size(); ++i) {
    const JsonValue& brow = *(*brows)->items[i];
    const JsonValue& crow = *(*crows)->items[i];
    const std::string label = bname + " " + row_label(brow, i);

    // Union of metric names, baseline order first.
    std::vector<std::string> keys;
    for (const auto& [k, v] : brow.fields) keys.push_back(k);
    for (const auto& [k, v] : crow.fields) {
      if (!brow.find(k)) keys.push_back(k);
    }
    for (const std::string& key : keys) {
      const JsonPtr* bv = brow.find(key);
      const JsonPtr* cv = crow.find(key);
      if (!bv || !cv) {
        violate(label + ": metric '" + key + "' " +
                (bv ? "missing from candidate" : "not in baseline"));
        continue;
      }
      ++checked;
      const JsonValue& b = **bv;
      const JsonValue& c = **cv;
      if (b.kind != c.kind) {
        violate(label + ": metric '" + key + "' changed type");
        continue;
      }
      if (b.kind == JsonValue::Kind::Number) {
        const double frac = tol.for_metric(key);
        const double scale = std::max(std::abs(b.num), std::abs(c.num));
        const double diff = std::abs(c.num - b.num);
        MetricCheck chk;
        chk.row = row_label(brow, i);
        chk.metric = key;
        chk.base = b.num;
        chk.cand = c.num;
        chk.rel = b.num != 0 ? (c.num - b.num) / std::abs(b.num) : 0.0;
        chk.tol = frac;
        if (diff > frac * scale + 1e-12) {
          chk.violated = true;
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "%s: %s base=%.6g cand=%.6g (%+.2f%% > tol %.2f%%)",
                        label.c_str(), key.c_str(), b.num, c.num,
                        100.0 * chk.rel, 100.0 * frac);
          std::fprintf(stderr, "FAIL %s\n", buf);
          ++violations;
          if (attribute_blame(brow, crow, chk.row, key, rep)) {
            const Blame& bl = rep->blames.back();
            std::fprintf(stderr,
                         "BLAME %s: %s regressed in stage '%s' "
                         "(%s base=%.6g cand=%.6g, %+.2f%%)\n",
                         label.c_str(), key.c_str(), bl.stage.c_str(),
                         bl.stage_metric.c_str(), bl.base, bl.cand,
                         100.0 * bl.rel);
          }
        }
        rep->checks.push_back(std::move(chk));
      } else if (b.kind == JsonValue::Kind::String) {
        if (b.str != c.str) {
          violate(label + ": " + key + " \"" + b.str + "\" -> \"" + c.str +
                  "\"");
        }
      } else if (b.kind == JsonValue::Kind::Bool) {
        if (b.b != c.b) violate(label + ": " + key + " flipped");
      }
    }
  }
  if (violations == 0) {
    std::printf("OK %s: %zu rows, %zu metrics within tolerance\n",
                bname.c_str(), (*brows)->items.size(), checked);
  }
  rep->checked = checked;
  rep->violations = violations;
  return violations;
}

// ------------------------------------------------------------- report --

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_report(const std::string& path, const std::string& baseline,
                  const std::string& candidate, const Report& rep) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_compare: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\n";
  out << "  \"schema_version\": 3,\n";
  out << "  \"baseline\": \"" << json_escape(baseline) << "\",\n";
  out << "  \"candidate\": \"" << json_escape(candidate) << "\",\n";
  out << "  \"figure\": \"" << json_escape(rep.figure) << "\",\n";
  out << "  \"pass\": " << (rep.violations == 0 ? "true" : "false") << ",\n";
  out << "  \"rows\": " << rep.rows << ",\n";
  out << "  \"metrics_checked\": " << rep.checked << ",\n";
  out << "  \"violations\": " << rep.violations << ",\n";
  out << "  \"checks\": [";
  for (std::size_t i = 0; i < rep.checks.size(); ++i) {
    const MetricCheck& c = rep.checks[i];
    out << (i ? ",\n    " : "\n    ");
    out << "{\"row\": \"" << json_escape(c.row) << "\", \"metric\": \""
        << json_escape(c.metric) << "\", \"base\": " << json_num(c.base)
        << ", \"cand\": " << json_num(c.cand)
        << ", \"rel\": " << json_num(c.rel)
        << ", \"tol\": " << json_num(c.tol) << ", \"violated\": "
        << (c.violated ? "true" : "false") << "}";
  }
  out << (rep.checks.empty() ? "],\n" : "\n  ],\n");
  out << "  \"mismatches\": [";
  for (std::size_t i = 0; i < rep.mismatches.size(); ++i) {
    out << (i ? ", " : "") << "\"" << json_escape(rep.mismatches[i]) << "\"";
  }
  out << "],\n";
  out << "  \"blame\": [";
  for (std::size_t i = 0; i < rep.blames.size(); ++i) {
    const Blame& b = rep.blames[i];
    out << (i ? ",\n    " : "\n    ");
    out << "{\"row\": \"" << json_escape(b.row) << "\", \"metric\": \""
        << json_escape(b.metric) << "\", \"stage\": \""
        << json_escape(b.stage) << "\", \"stage_metric\": \""
        << json_escape(b.stage_metric) << "\", \"base\": "
        << json_num(b.base) << ", \"cand\": " << json_num(b.cand)
        << ", \"rel\": " << json_num(b.rel) << "}";
  }
  out << (rep.blames.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

void usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <candidate.json>\n"
               "                     [--tol default=<frac>] "
               "[--tol <metric>=<frac>]... [--json <report.json>]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string json_path;
  Tolerances tol;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) usage();
      json_path = argv[++i];
    } else if (arg == "--tol") {
      if (i + 1 >= argc) usage();
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) usage();
      const std::string name = spec.substr(0, eq);
      const double frac = std::atof(spec.c_str() + eq + 1);
      if (frac < 0) usage();
      if (name == "default") {
        tol.fallback = frac;
      } else {
        tol.per_metric[name] = frac;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) usage();

  const JsonPtr base = load(files[0]);
  const JsonPtr cand = load(files[1]);
  Report rep;
  const int violations = compare(*base, *cand, tol, &rep);
  if (!json_path.empty()) write_report(json_path, files[0], files[1], rep);
  if (violations > 0) {
    std::fprintf(stderr, "bench_compare: %d violation(s) against %s\n",
                 violations, files[0].c_str());
    return 1;
  }
  return 0;
}
