// Ablation: Grace Hash sensitivity to its two knobs — bucket sizing
// (bucket pairs must fit in memory; more buckets = same I/O, more seeks
// here = none, so GH is flat until buckets are absurdly small) and the
// record batch size used for network shipping.

#include "bench_util.hpp"

int main() {
  using namespace orv;
  using namespace orv::bench;
  print_banner("Ablation", "Grace Hash bucket sizing and batch size");

  DatasetSpec data;
  data.grid = {64, 64, 64};
  data.part1 = {16, 16, 16};
  data.part2 = {16, 16, 16};
  data.num_storage_nodes = 5;
  ClusterSpec cspec;
  cspec.num_storage = 5;
  cspec.num_compute = 5;

  auto ds = generate_dataset(data);
  JoinQuery query{data.table1_id, data.table2_id, {"x", "y", "z"}, {}};

  std::printf("-- bucket pair target size --\n");
  std::printf("%14s | %8s %12s\n", "bucket bytes", "time", "buckets/node");
  for (std::uint64_t target : {64ull * 1024, 256ull * 1024, 1ull << 20,
                               4ull << 20, 64ull << 20}) {
    sim::Engine engine;
    Cluster cluster(engine, cspec);
    BdsService bds(cluster, ds.meta, ds.stores);
    QesOptions options;
    options.bucket_pair_bytes = target;
    const auto r = run_grace_hash(cluster, bds, ds.meta, query, options);
    const double per_node =
        static_cast<double>(ds.meta.table_bytes(1) + ds.meta.table_bytes(2)) /
        static_cast<double>(cspec.num_compute);
    std::printf("%14llu | %7.3fs %12.0f\n", (unsigned long long)target,
                r.elapsed, per_node / static_cast<double>(target) + 1);
  }

  std::printf("\n-- network batch size --\n");
  std::printf("%14s | %8s\n", "batch bytes", "time");
  for (std::size_t batch : {4096, 16384, 65536, 262144}) {
    sim::Engine engine;
    Cluster cluster(engine, cspec);
    BdsService bds(cluster, ds.meta, ds.stores);
    QesOptions options;
    options.batch_bytes = batch;
    const auto r = run_grace_hash(cluster, bds, ds.meta, query, options);
    std::printf("%14zu | %7.3fs\n", batch, r.elapsed);
  }
  std::printf("\nExpected: GH is insensitive to both knobs across sane "
              "ranges (its cost is\nbyte-proportional I/O), which is why "
              "the model needs no bucket parameters.\n\n");
  return 0;
}
