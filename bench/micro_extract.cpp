// Microbenchmark of the extractor functions: chunk-parse throughput per
// layout. Validates the paper's assumption that extraction cost is much
// less than the I/O cost of retrieving the chunk (GB/s here vs tens of
// MB/s disks).

#include <benchmark/benchmark.h>

#include "datagen/generator.hpp"
#include "extract/extractor.hpp"

namespace {

using namespace orv;

std::vector<std::byte> sample_chunk(LayoutId layout, std::size_t rows) {
  auto schema = Schema::make({{"x", AttrType::Float32},
                              {"y", AttrType::Float32},
                              {"z", AttrType::Float32},
                              {"oilp", AttrType::Float32}});
  SubTable st(schema, SubTableId{1, 0});
  std::vector<Value> vals(4, Value(0.0f));
  for (std::size_t r = 0; r < rows; ++r) {
    vals[0] = Value(static_cast<float>(r % 64));
    vals[1] = Value(static_cast<float>((r / 64) % 64));
    vals[2] = Value(static_cast<float>(r / 4096));
    vals[3] = Value(static_cast<float>(r) * 0.001f);
    st.append_values(vals);
  }
  st.compute_bounds();
  return make_chunk(st, layout);
}

void run_extract(benchmark::State& state, LayoutId layout) {
  const std::size_t rows = 1 << 16;
  const auto chunk = sample_chunk(layout, rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_chunk(chunk));
  }
  state.SetBytesProcessed(state.iterations() * chunk.size());
}

void BM_ExtractRowMajor(benchmark::State& state) {
  run_extract(state, LayoutId::RowMajor);
}
void BM_ExtractColMajor(benchmark::State& state) {
  run_extract(state, LayoutId::ColMajor);
}
void BM_ExtractBlockedRows(benchmark::State& state) {
  run_extract(state, LayoutId::BlockedRows);
}
BENCHMARK(BM_ExtractRowMajor);
BENCHMARK(BM_ExtractColMajor);
BENCHMARK(BM_ExtractBlockedRows);

void BM_EncodeChunk(benchmark::State& state) {
  auto schema = Schema::make({{"x", AttrType::Float32},
                              {"y", AttrType::Float32},
                              {"z", AttrType::Float32},
                              {"oilp", AttrType::Float32}});
  SubTable st(schema, SubTableId{1, 0});
  std::vector<Value> vals(4, Value(1.0f));
  for (std::size_t r = 0; r < (1 << 16); ++r) st.append_values(vals);
  st.compute_bounds();
  const auto layout = static_cast<LayoutId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_chunk(st, layout));
  }
  state.SetBytesProcessed(state.iterations() * st.size_bytes());
}
BENCHMARK(BM_EncodeChunk)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
