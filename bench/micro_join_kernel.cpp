// Microbenchmark of the in-memory hash-join kernel: per-tuple build and
// probe costs (real wall-clock). This is how alpha_build / alpha_lookup
// (Table 1) would be calibrated on a target machine: gamma = ops/tuple =
// measured ns/tuple * F.
//
// Besides the google-benchmark suites, main() always runs a scalar-vs-tuned
// probe sweep across build sizes spanning the L2/L3 boundary and writes the
// results as machine-readable JSON (default BENCH_join_kernel.json, or the
// path given by --sweep_json=...), so successive PRs can track the kernel's
// throughput trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "join/hash_join.hpp"

namespace {

using namespace orv;

SchemaPtr wide_schema(std::size_t attrs) {
  std::vector<Attribute> a{{"k", AttrType::Int64}};
  for (std::size_t i = 1; i < attrs; ++i) {
    a.push_back({"a" + std::to_string(i), AttrType::Float32});
  }
  return Schema::make(std::move(a));
}

std::shared_ptr<SubTable> make_rows(SchemaPtr schema, std::size_t n,
                                    std::uint64_t seed,
                                    std::uint64_t key_space = 0) {
  auto st = std::make_shared<SubTable>(schema, SubTableId{1, 0});
  Xoshiro256StarStar rng(seed);
  std::vector<Value> vals;
  for (std::size_t r = 0; r < n; ++r) {
    vals.clear();
    const std::int64_t k = key_space
                               ? static_cast<std::int64_t>(rng.below(key_space))
                               : static_cast<std::int64_t>(r);
    vals.push_back(Value(k));
    for (std::size_t i = 1; i < schema->num_attrs(); ++i) {
      vals.push_back(Value(static_cast<float>(rng.uniform01())));
    }
    st->append_values(vals);
  }
  return st;
}

JoinKernelOptions kernel_options(int variant) {
  switch (variant) {
    case 0:
      return JoinKernelOptions::scalar();
    case 1: {
      JoinKernelOptions o;  // batched + prefetch, no radix
      o.radix_build = false;
      return o;
    }
    default:
      return JoinKernelOptions{};  // tuned: batched + radix
  }
}

const char* kVariantNames[] = {"scalar", "batched", "tuned"};

void BM_HashTableBuild(benchmark::State& state) {
  const auto rows = make_rows(wide_schema(4), state.range(0), 1);
  const JoinKernelOptions opt = kernel_options(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    BuiltHashTable ht(rows, {"k"}, opt);
    benchmark::DoNotOptimize(ht.table_bytes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(kVariantNames[state.range(1)]);
}
BENCHMARK(BM_HashTableBuild)
    ->Args({1 << 10, 2})
    ->Args({1 << 14, 2})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 2})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 2});

void BM_HashTableProbe(benchmark::State& state) {
  const auto left = make_rows(wide_schema(4), state.range(0), 1);
  const auto right = make_rows(wide_schema(4), state.range(0), 2);
  BuiltHashTable ht(left, {"k"}, kernel_options(static_cast<int>(state.range(1))));
  const JoinKey rkey = JoinKey::resolve(right->schema(), {"k"});
  auto result_schema = std::make_shared<const Schema>(Schema::join_result(
      left->schema(), right->schema(), rkey.attr_indices()));
  for (auto _ : state) {
    SubTable out(result_schema, SubTableId{9, 0});
    benchmark::DoNotOptimize(ht.probe(*right, {"k"}, out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(kVariantNames[state.range(1)]);
}
BENCHMARK(BM_HashTableProbe)
    ->Args({1 << 10, 0})
    ->Args({1 << 10, 2})
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 2})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1})
    ->Args({1 << 17, 2})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 2});

// The paper's record-size-independence claim: build cost per tuple should
// be flat across record widths (pointer-valued hash table).
void BM_BuildByRecordWidth(benchmark::State& state) {
  const auto rows = make_rows(wide_schema(state.range(0)), 1 << 14, 1);
  for (auto _ : state) {
    BuiltHashTable ht(rows, {"k"});
    benchmark::DoNotOptimize(ht.table_bytes());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_BuildByRecordWidth)->Arg(2)->Arg(4)->Arg(11)->Arg(21);

void BM_EndToEndHashJoin(benchmark::State& state) {
  const auto left = make_rows(wide_schema(4), state.range(0), 1);
  const auto right = make_rows(wide_schema(4), state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hash_join(*left, *right, {"k"}, SubTableId{9, 0}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_EndToEndHashJoin)->Arg(1 << 12)->Arg(1 << 16);

// --- Scalar vs tuned sweep, emitted as JSON -------------------------------

double probe_ns_per_tuple(const BuiltHashTable& ht, const SubTable& right,
                          const SchemaPtr& result_schema) {
  using clock = std::chrono::steady_clock;
  double best = 0;
  std::size_t iters = 0;
  const auto deadline = clock::now() + std::chrono::milliseconds(300);
  do {
    SubTable out(result_schema, SubTableId{9, 0});
    const auto t0 = clock::now();
    auto stats = ht.probe(right, {"k"}, out);
    const auto t1 = clock::now();
    benchmark::DoNotOptimize(stats.result_tuples);
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(right.num_rows());
    if (best == 0 || ns < best) best = ns;
    ++iters;
  } while (clock::now() < deadline || iters < 3);
  return best;
}

void run_sweep(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  const JoinKernelOptions tuned;
  std::fprintf(f, "{\n  \"bench\": \"join_kernel_probe_sweep\",\n");
  std::fprintf(f, "  \"record_bytes\": %zu,\n", wide_schema(4)->record_size());
  std::fprintf(f, "  \"l2_bytes\": %zu,\n  \"points\": [\n", tuned.l2_bytes);
  bool first = true;
  for (int lg = 14; lg <= 20; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    const auto left = make_rows(wide_schema(4), n, 1);
    const auto right = make_rows(wide_schema(4), n, 2, n);
    auto result_schema = std::make_shared<const Schema>(Schema::join_result(
        left->schema(), right->schema(),
        JoinKey::resolve(right->schema(), {"k"}).attr_indices()));
    const BuiltHashTable scalar(left, {"k"}, JoinKernelOptions::scalar());
    const BuiltHashTable fast(left, {"k"}, tuned);
    const double s_ns = probe_ns_per_tuple(scalar, *right, result_schema);
    const double f_ns = probe_ns_per_tuple(fast, *right, result_schema);
    if (!first) std::fprintf(f, ",\n");
    first = false;
    std::fprintf(f,
                 "    {\"build_rows\": %zu, \"table_bytes\": %zu, "
                 "\"partitions\": %zu, \"scalar_ns_per_tuple\": %.2f, "
                 "\"tuned_ns_per_tuple\": %.2f, \"speedup\": %.2f}",
                 n, fast.table_bytes(), fast.num_partitions(), s_ns, f_ns,
                 s_ns / f_ns);
    std::fprintf(stderr,
                 "sweep rows=%zu table=%zuKiB parts=%zu scalar=%.1fns "
                 "tuned=%.1fns speedup=%.2fx\n",
                 n, fast.table_bytes() >> 10, fast.num_partitions(), s_ns,
                 f_ns, s_ns / f_ns);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string sweep_path = "BENCH_join_kernel.json";
  bool sweep_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sweep_json=", 13) == 0) {
      sweep_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--sweep_only") == 0) {
      sweep_only = true;
    }
  }
  run_sweep(sweep_path);
  if (sweep_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
