// Microbenchmark of the in-memory hash-join kernel: per-tuple build and
// probe costs (real wall-clock). This is how alpha_build / alpha_lookup
// (Table 1) would be calibrated on a target machine: gamma = ops/tuple =
// measured ns/tuple * F.

#include <benchmark/benchmark.h>

#include "common/prng.hpp"
#include "join/hash_join.hpp"

namespace {

using namespace orv;

SchemaPtr wide_schema(std::size_t attrs) {
  std::vector<Attribute> a{{"k", AttrType::Int64}};
  for (std::size_t i = 1; i < attrs; ++i) {
    a.push_back({"a" + std::to_string(i), AttrType::Float32});
  }
  return Schema::make(std::move(a));
}

std::shared_ptr<SubTable> make_rows(SchemaPtr schema, std::size_t n,
                                    std::uint64_t seed) {
  auto st = std::make_shared<SubTable>(schema, SubTableId{1, 0});
  Xoshiro256StarStar rng(seed);
  std::vector<Value> vals;
  for (std::size_t r = 0; r < n; ++r) {
    vals.clear();
    vals.push_back(Value(static_cast<std::int64_t>(r)));
    for (std::size_t i = 1; i < schema->num_attrs(); ++i) {
      vals.push_back(Value(static_cast<float>(rng.uniform01())));
    }
    st->append_values(vals);
  }
  return st;
}

void BM_HashTableBuild(benchmark::State& state) {
  const auto rows = make_rows(wide_schema(4), state.range(0), 1);
  for (auto _ : state) {
    BuiltHashTable ht(rows, {"k"});
    benchmark::DoNotOptimize(ht.table_bytes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashTableBuild)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_HashTableProbe(benchmark::State& state) {
  const auto left = make_rows(wide_schema(4), state.range(0), 1);
  const auto right = make_rows(wide_schema(4), state.range(0), 2);
  BuiltHashTable ht(left, {"k"});
  const JoinKey rkey = JoinKey::resolve(right->schema(), {"k"});
  auto result_schema = std::make_shared<const Schema>(Schema::join_result(
      left->schema(), right->schema(), rkey.attr_indices()));
  for (auto _ : state) {
    SubTable out(result_schema, SubTableId{9, 0});
    benchmark::DoNotOptimize(ht.probe(*right, {"k"}, out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashTableProbe)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// The paper's record-size-independence claim: build cost per tuple should
// be flat across record widths (pointer-valued hash table).
void BM_BuildByRecordWidth(benchmark::State& state) {
  const auto rows = make_rows(wide_schema(state.range(0)), 1 << 14, 1);
  for (auto _ : state) {
    BuiltHashTable ht(rows, {"k"});
    benchmark::DoNotOptimize(ht.table_bytes());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_BuildByRecordWidth)->Arg(2)->Arg(4)->Arg(11)->Arg(21);

void BM_EndToEndHashJoin(benchmark::State& state) {
  const auto left = make_rows(wide_schema(4), state.range(0), 1);
  const auto right = make_rows(wide_schema(4), state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hash_join(*left, *right, {"k"}, SubTableId{9, 0}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_EndToEndHashJoin)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
