// Microbenchmark of the discrete-event engine itself: event throughput,
// process spawn cost, channel hand-off rate, resource reservation rate.
// These bound how large a simulated cluster/workload is practical.

#include <benchmark/benchmark.h>

#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace {

using namespace orv::sim;

void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Engine e;
    auto ticker = [](Engine& eng, int n) -> Task<> {
      for (int i = 0; i < n; ++i) co_await eng.sleep(0.001);
    };
    e.spawn(ticker(e, static_cast<int>(state.range(0))));
    e.run();
    benchmark::DoNotOptimize(e.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventThroughput)->Arg(1 << 10)->Arg(1 << 14);

void BM_ProcessSpawn(benchmark::State& state) {
  for (auto _ : state) {
    Engine e;
    auto noop = []() -> Task<> { co_return; };
    for (int i = 0; i < state.range(0); ++i) e.spawn(noop());
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProcessSpawn)->Arg(1 << 10);

void BM_ChannelHandoff(benchmark::State& state) {
  for (auto _ : state) {
    Engine e;
    Channel<int> ch(e, 16);
    auto tx = [](Channel<int>& c, int n) -> Task<> {
      for (int i = 0; i < n; ++i) co_await c.send(i);
      c.close();
    };
    auto rx = [](Channel<int>& c) -> Task<> {
      while (co_await c.recv()) {
      }
    };
    e.spawn(tx(ch, static_cast<int>(state.range(0))));
    e.spawn(rx(ch));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelHandoff)->Arg(1 << 12);

void BM_ResourceReservations(benchmark::State& state) {
  Engine e;
  Resource r(e, "r", 1e9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.reserve(64.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceReservations);

}  // namespace

BENCHMARK_MAIN();
