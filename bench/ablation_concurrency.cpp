// Ablation: concurrent multi-query workloads (ISSUE: latency vs offered
// load under the open-loop Poisson driver).
//
// A mixed IJ/GH query stream is offered to the shared cluster at rising
// multiples rho of its single-query capacity (rho = 1 means queries
// arrive exactly as fast as one query completes solo). Expected shape:
// throughput climbs with offered load until the cluster saturates, then
// plateaus while p99 latency keeps rising — the classic open-loop knee.
// At overload, capping concurrency without bounding the queue lets queue
// waits grow without limit; the admission controller's bounded run queue
// rejects the excess instead, holding p99 queue wait down at the price of
// an explicit rejection count.
//
//   --out <path.json>  writes the series for the bench_compare gate
//                      (BENCH_concurrency.json).
//   --check            CI perf-smoke mode: asserts the saturation shape,
//                      rising p99, zero lost queries, and that the bounded
//                      queue beats the unbounded one on p99 queue wait at
//                      overload.

#include <cstring>

#include "bench_util.hpp"
#include "workload/workload.hpp"

namespace {

using namespace orv;
using namespace orv::bench;

DatasetSpec workload_dataset() {
  DatasetSpec data;
  data.grid = {32, 32, 32};
  data.part1 = {8, 8, 8};
  data.part2 = {4, 4, 4};
  data.num_storage_nodes = 3;
  return data;
}

ClusterSpec workload_cluster() {
  ClusterSpec cspec;
  cspec.num_storage = 3;
  cspec.num_compute = 4;
  return cspec;
}

/// Three-client mix over the dataset: the full view, a half-space slice,
/// and a narrow slab — algorithms left to the planner.
WorkloadSpec mixed_workload(const DatasetSpec& data, double per_client_rate,
                            std::size_t queries_per_client) {
  const JoinQuery full{data.table1_id, data.table2_id, {"x", "y", "z"}, {}};
  JoinQuery half = full;
  half.ranges = {{"x", {0.0, 15.0}}};
  JoinQuery slab = full;
  slab.ranges = {{"z", {12.0, 19.0}}};

  WorkloadSpec spec;
  spec.seed = 2006;
  // Private per-query caches: with the shared session cache on, repeat
  // queries collapse to near-zero service time and the offered-load
  // normalization loses meaning (cross-query caching is measured by
  // ablation_session_cache; this ablation measures contention).
  spec.session.share_cache = false;
  const JoinQuery queries[3] = {full, half, slab};
  for (std::size_t c = 0; c < 3; ++c) {
    WorkloadClientSpec client;
    client.name = "client" + std::to_string(c);
    client.mix.push_back({queries[c], std::nullopt, 2.0, 0.0});
    client.mix.push_back({queries[(c + 1) % 3], std::nullopt, 1.0, 0.0});
    client.poisson_rate = per_client_rate;
    client.num_queries = queries_per_client;
    spec.clients.push_back(std::move(client));
  }
  return spec;
}

struct LoadPoint {
  double rho = 0;
  WorkloadResult result;
};

WorkloadResult run_spec(const GeneratedDataset& ds, const ClusterSpec& cspec,
                        const WorkloadSpec& spec) {
  sim::Engine engine;
  Cluster cluster(engine, cspec);
  BdsService bds(cluster, ds.meta, ds.stores);
  return run_workload(cluster, bds, ds.meta, spec);
}

/// Mean solo service time of the mix — the normalizer that turns arrival
/// rates into rho. Each of the three specs appears with the same overall
/// weight across the clients, so the plain mean is the mix mean. Measured
/// by running each query alone on an idle cluster (planner's choice of
/// algorithm, exactly as the driver runs it).
double solo_seconds(const GeneratedDataset& ds, const DatasetSpec& data,
                    const ClusterSpec& cspec) {
  const JoinQuery full{data.table1_id, data.table2_id, {"x", "y", "z"}, {}};
  JoinQuery half = full;
  half.ranges = {{"x", {0.0, 15.0}}};
  JoinQuery slab = full;
  slab.ranges = {{"z", {12.0, 19.0}}};
  double total = 0;
  for (const JoinQuery& q : {full, half, slab}) {
    WorkloadSpec one;
    WorkloadClientSpec client;
    client.name = "solo";
    client.mix.push_back({q, std::nullopt, 1.0, 0.0});
    client.trace_arrivals = {0.0};
    one.clients.push_back(std::move(client));
    one.session.share_cache = false;
    const WorkloadResult r = run_spec(ds, cspec, one);
    total += r.outcomes.at(0).service();
  }
  return total / 3.0;
}

constexpr double kRhos[] = {0.5, 1.0, 2.0, 4.0, 8.0};
constexpr std::size_t kQueriesPerClient = 8;
constexpr std::size_t kOverloadQueriesPerClient = 12;

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  const std::string out_path = parse_out_path(argc, argv);

  print_banner("Ablation", "concurrent workloads: latency vs offered load");
  const DatasetSpec data = workload_dataset();
  const ClusterSpec cspec = workload_cluster();
  const auto ds = generate_dataset(data);
  const double solo = solo_seconds(ds, data, cspec);
  std::printf("mean solo mix query: %.4fs -> capacity ~%.3f q/s\n\n", solo,
              1.0 / solo);

  SeriesJson series("ablation_concurrency");
  std::printf("%-6s | %9s %10s | %8s %8s %8s | %9s\n", "rho", "offered",
              "through", "p50", "p95", "p99", "mean qw");
  std::vector<LoadPoint> points;
  for (const double rho : kRhos) {
    const double per_client = rho / (3.0 * solo);
    const WorkloadSpec spec = mixed_workload(data, per_client,
                                             kQueriesPerClient);
    LoadPoint pt;
    pt.rho = rho;
    pt.result = run_spec(ds, cspec, spec);
    const WorkloadResult& r = pt.result;
    std::printf("%-6.2f | %8.3f/s %8.3f/s | %8.3f %8.3f %8.3f | %9.4f\n",
                rho, 3.0 * per_client, r.throughput, r.p50_latency,
                r.p95_latency, r.p99_latency, r.mean_queue_wait);
    series.add_row(strformat(
        "{\"rho\":%.2f,\"offered_qps\":%.6f,\"throughput_qps\":%.6f,"
        "\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"completed\":%zu}",
        rho, 3.0 * per_client, r.throughput, r.p50_latency, r.p95_latency,
        r.p99_latency, r.completed));
    points.push_back(std::move(pt));
  }

  // Overload (rho = 8) with a concurrency cap: unbounded queue vs the
  // admission controller's bounded run queue with rejection.
  const double overload = kRhos[4] / (3.0 * solo);
  WorkloadSpec capped =
      mixed_workload(data, overload, kOverloadQueriesPerClient);
  capped.admission.max_running = 2;
  const WorkloadResult unbounded = run_spec(ds, cspec, capped);
  capped.admission.max_queued = 3;
  const WorkloadResult bounded = run_spec(ds, cspec, capped);
  std::printf("\noverload rho=8, 2 slots       | %8s %11s %9s\n", "p99 qw",
              "p99 latency", "rejected");
  std::printf("unbounded queue (no admission)| %8.3f %11.3f %9zu\n",
              unbounded.p99_queue_wait, unbounded.p99_latency,
              unbounded.rejected);
  std::printf("bounded queue   (admission)   | %8.3f %11.3f %9zu\n",
              bounded.p99_queue_wait, bounded.p99_latency, bounded.rejected);
  series.add_row(strformat(
      "{\"mode\":\"capped_unbounded\",\"p99_queue_wait\":%.6f,"
      "\"p99\":%.6f,\"rejected\":%zu}",
      unbounded.p99_queue_wait, unbounded.p99_latency, unbounded.rejected));
  series.add_row(strformat(
      "{\"mode\":\"capped_bounded\",\"p99_queue_wait\":%.6f,"
      "\"p99\":%.6f,\"rejected\":%zu}",
      bounded.p99_queue_wait, bounded.p99_latency, bounded.rejected));

  std::printf("\nExpected shape: throughput tracks the offered rate until "
              "the cluster\nsaturates, then plateaus while p99 latency "
              "keeps climbing; at overload the\nbounded run queue sheds "
              "load to hold p99 queue wait down where the unbounded\n"
              "queue lets it grow with the backlog.\n\n");

  if (!out_path.empty() && !series.write(out_path)) return 1;
  if (!check) return 0;

  bool ok = true;
  // Low load is unsaturated: everything completes, nothing queues long.
  for (const auto& pt : points) {
    if (pt.result.completed != pt.result.submitted ||
        pt.result.failed != 0) {
      std::printf("FAIL: rho=%.2f lost queries (%zu/%zu, %zu failed)\n",
                  pt.rho, pt.result.completed, pt.result.submitted,
                  pt.result.failed);
      ok = false;
    }
  }
  // Throughput climbs out of light load...
  if (points[2].result.throughput < 1.2 * points[0].result.throughput) {
    std::printf("FAIL: throughput did not rise with load (%.4f -> %.4f)\n",
                points[0].result.throughput, points[2].result.throughput);
    ok = false;
  }
  // ...then saturates: doubling rho from 4 to 8 buys almost nothing.
  if (points[4].result.throughput > 1.3 * points[3].result.throughput) {
    std::printf("FAIL: no saturation: rho=8 throughput %.4f >> rho=4 %.4f\n",
                points[4].result.throughput, points[3].result.throughput);
    ok = false;
  }
  // p99 latency rises monotonically-in-shape with offered load.
  if (points[4].result.p99_latency <= 1.2 * points[0].result.p99_latency) {
    std::printf("FAIL: p99 flat under load (%.4f -> %.4f)\n",
                points[0].result.p99_latency, points[4].result.p99_latency);
    ok = false;
  }
  // Admission sheds load instead of queueing it.
  if (bounded.rejected == 0 || unbounded.rejected != 0) {
    std::printf("FAIL: rejection accounting (bounded %zu, unbounded %zu)\n",
                bounded.rejected, unbounded.rejected);
    ok = false;
  }
  if (bounded.p99_queue_wait >= 0.8 * unbounded.p99_queue_wait) {
    std::printf("FAIL: bounded queue p99 wait %.4f not < 0.8 x unbounded "
                "%.4f\n",
                bounded.p99_queue_wait, unbounded.p99_queue_wait);
    ok = false;
  }
  std::printf("%s: saturation %.4f->%.4f->%.4f q/s, p99 %.3f->%.3fs, "
              "queue wait %.3f vs %.3fs (%zu rejected)\n",
              ok ? "PASS" : "FAIL", points[0].result.throughput,
              points[2].result.throughput, points[4].result.throughput,
              points[0].result.p99_latency, points[4].result.p99_latency,
              bounded.p99_queue_wait, unbounded.p99_queue_wait,
              bounded.rejected);
  return ok ? 0 : 1;
}
